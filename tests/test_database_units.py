"""GBO unit lifecycle: add/read/wait/finish/delete (section 3.2)."""

import pytest

from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.core.units import UnitState
from repro.errors import (
    ReadFunctionError,
    UnitStateError,
    UnknownUnitError,
)

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 8, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


def simple_reader(nbytes=80):
    """A read callback creating one record named after the unit."""

    def read_fn(gbo, unit_name):
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(8)[:8].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        record.field("data").as_array()[:] = 1.25
        gbo.commit_record(record)

    return read_fn


@pytest.fixture(params=[True, False], ids=["multi-thread", "single-thread"])
def any_gbo(request):
    gbo = GBO(mem_mb=8, background_io=request.param)
    yield gbo
    gbo.close()


class TestAddWaitFinishDelete:
    def test_batch_mode_pattern(self, any_gbo):
        """The section-3.3 sample program: add all, wait, process,
        delete — in both library builds."""
        for i in range(4):
            any_gbo.add_unit(f"u{i}", simple_reader())
        for i in range(4):
            name = f"u{i}"
            any_gbo.wait_unit(name)
            data = any_gbo.get_field_buffer(
                "item", "data", [name.ljust(8).encode()]
            )
            assert (data == 1.25).all()
            any_gbo.delete_unit(name)
            assert any_gbo.unit_state(name) is UnitState.DELETED
        assert any_gbo.stats.units_deleted == 4

    def test_add_requires_read_fn(self, any_gbo):
        with pytest.raises(ValueError):
            any_gbo.add_unit("u", None)

    def test_add_duplicate_active_raises(self, any_gbo):
        any_gbo.add_unit("u", simple_reader())
        any_gbo.wait_unit("u")
        with pytest.raises(UnitStateError):
            any_gbo.add_unit("u", simple_reader())

    def test_wait_unknown_raises(self, any_gbo):
        with pytest.raises(UnknownUnitError):
            any_gbo.wait_unit("ghost")

    def test_finish_unknown_raises(self, any_gbo):
        with pytest.raises(UnknownUnitError):
            any_gbo.finish_unit("ghost")

    def test_delete_unknown_raises(self, any_gbo):
        with pytest.raises(UnknownUnitError):
            any_gbo.delete_unit("ghost")

    def test_finish_before_resident_raises(self, any_gbo):
        if any_gbo.background_io:
            pytest.skip("queued state is transient with an I/O thread")
        any_gbo.add_unit("u", simple_reader())
        with pytest.raises(UnitStateError):
            any_gbo.finish_unit("u")

    def test_delete_queued_unit_cancels(self, gbo_single):
        gbo_single.add_unit("u", simple_reader())
        gbo_single.delete_unit("u")
        assert gbo_single.unit_state("u") is UnitState.DELETED
        with pytest.raises(UnitStateError):
            gbo_single.wait_unit("u")

    def test_delete_is_idempotent(self, any_gbo):
        any_gbo.add_unit("u", simple_reader())
        any_gbo.wait_unit("u")
        any_gbo.delete_unit("u")
        any_gbo.delete_unit("u")  # no-op

    def test_delete_removes_records(self, any_gbo):
        any_gbo.add_unit("u", simple_reader())
        any_gbo.wait_unit("u")
        assert any_gbo.record_count("item") == 1
        used = any_gbo.mem_used_bytes
        any_gbo.delete_unit("u")
        assert any_gbo.record_count("item") == 0
        assert any_gbo.mem_used_bytes < used

    def test_wait_twice_is_hit(self, any_gbo):
        any_gbo.add_unit("u", simple_reader())
        any_gbo.wait_unit("u")
        hits_before = any_gbo.stats.wait_hits
        any_gbo.wait_unit("u")
        assert any_gbo.stats.wait_hits == hits_before + 1

    def test_is_resident_and_list_units(self, any_gbo):
        any_gbo.add_unit("u", simple_reader())
        any_gbo.wait_unit("u")
        assert any_gbo.is_resident("u")
        assert not any_gbo.is_resident("ghost")
        assert ("u", UnitState.RESIDENT) in any_gbo.list_units()
        assert any_gbo.resident_bytes_of("u") > 0
        with pytest.raises(UnknownUnitError):
            any_gbo.resident_bytes_of("ghost")


class TestReadUnit:
    def test_read_unit_foreground(self, any_gbo):
        """Interactive mode: explicit blocking read (section 3.2)."""
        any_gbo.read_unit("u", simple_reader())
        assert any_gbo.is_resident("u")
        assert any_gbo.stats.units_read_foreground >= 1

    def test_read_unit_unknown_without_fn_raises(self, any_gbo):
        with pytest.raises(UnknownUnitError):
            any_gbo.read_unit("ghost")

    def test_read_unit_hit_on_resident(self, any_gbo):
        any_gbo.read_unit("u", simple_reader())
        before = any_gbo.stats.wait_hits
        any_gbo.read_unit("u")
        assert any_gbo.stats.wait_hits == before + 1

    def test_read_unit_failure_raises_and_marks_failed(self, any_gbo):
        def broken(gbo, unit_name):
            raise IOError("corrupt file")

        with pytest.raises(ReadFunctionError) as excinfo:
            any_gbo.read_unit("bad", broken)
        assert isinstance(excinfo.value.__cause__, IOError)
        assert any_gbo.unit_state("bad") is UnitState.FAILED
        assert any_gbo.stats.units_failed == 1

    def test_read_unit_retry_after_failure(self, any_gbo):
        calls = {"n": 0}

        def flaky(gbo, unit_name):
            calls["n"] += 1
            if calls["n"] == 1:
                raise IOError("transient")
            simple_reader()(gbo, unit_name)

        with pytest.raises(ReadFunctionError):
            any_gbo.read_unit("u", flaky)
        any_gbo.read_unit("u")  # retries with the stored callback
        assert any_gbo.is_resident("u")

    def test_failed_partial_records_are_freed(self, any_gbo):
        def partial(gbo, unit_name):
            ITEM.ensure(gbo)
            record = gbo.new_record("item")
            record.field("id").write(b"partial_")
            gbo.alloc_field_buffer(record, "data", 80)
            gbo.commit_record(record)
            raise IOError("died after first record")

        with pytest.raises(ReadFunctionError):
            any_gbo.read_unit("bad", partial)
        assert any_gbo.record_count("item") == 0
        assert any_gbo.mem_used_bytes == 0


class TestWaitFailurePropagation:
    def test_wait_on_failed_prefetch_raises(self):
        def broken(gbo, unit_name):
            raise ValueError("bad data")

        with GBO(mem_mb=8) as gbo:
            gbo.add_unit("u", broken)
            with pytest.raises(ReadFunctionError) as excinfo:
                gbo.wait_unit("u")
            assert isinstance(excinfo.value.__cause__, ValueError)

    def test_single_thread_wait_failure(self, gbo_single):
        def broken(gbo, unit_name):
            raise ValueError("bad data")

        gbo_single.add_unit("u", broken)
        with pytest.raises(ReadFunctionError):
            gbo_single.wait_unit("u")

    def test_readd_failed_unit(self, gbo_single):
        def broken(gbo, unit_name):
            raise ValueError("bad data")

        gbo_single.add_unit("u", broken)
        with pytest.raises(ReadFunctionError):
            gbo_single.wait_unit("u")
        gbo_single.add_unit("u", simple_reader())  # re-add allowed
        gbo_single.wait_unit("u")
        assert gbo_single.is_resident("u")


class TestRefCounts:
    def test_finish_makes_evictable_only_at_zero_refs(self, gbo_single):
        gbo_single.add_unit("u", simple_reader())
        gbo_single.wait_unit("u")   # ref 1
        gbo_single.wait_unit("u")   # ref 2
        gbo_single.finish_unit("u")  # ref 1 — not evictable yet
        assert len(gbo_single._policy) == 0
        gbo_single.finish_unit("u")  # ref 0 — evictable now
        assert "u" in gbo_single._policy

    def test_rewait_removes_from_evictable_set(self, gbo_single):
        gbo_single.add_unit("u", simple_reader())
        gbo_single.wait_unit("u")
        gbo_single.finish_unit("u")
        assert "u" in gbo_single._policy
        gbo_single.wait_unit("u")   # hit re-acquires
        assert "u" not in gbo_single._policy
