"""Unit tests for the red-black tree (the record index's backbone)."""

import pytest

from repro.structures.rbtree import RedBlackTree


@pytest.fixture
def tree():
    return RedBlackTree()


class TestBasics:
    def test_empty(self, tree):
        assert len(tree) == 0
        assert not tree
        assert "missing" not in tree
        assert list(tree.items()) == []

    def test_insert_and_get(self, tree):
        assert tree.insert("b", 2)
        assert tree["b"] == 2
        assert "b" in tree
        assert len(tree) == 1

    def test_insert_overwrites(self, tree):
        tree.insert("k", 1)
        assert not tree.insert("k", 2)  # replacement, not new node
        assert tree["k"] == 2
        assert len(tree) == 1

    def test_getitem_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree["missing"]

    def test_find_default(self, tree):
        assert tree.find("x") is None
        assert tree.find("x", 42) == 42
        assert tree.get("x", "d") == "d"

    def test_setitem_delitem(self, tree):
        tree["a"] = 1
        assert tree["a"] == 1
        del tree["a"]
        assert "a" not in tree
        with pytest.raises(KeyError):
            del tree["a"]

    def test_bool(self, tree):
        assert not tree
        tree.insert(1, 1)
        assert tree


class TestOrdering:
    def test_items_sorted(self, tree):
        for key in [5, 3, 8, 1, 4, 7, 9, 2, 6]:
            tree.insert(key, key * 10)
        assert list(tree.keys()) == list(range(1, 10))
        assert list(tree.values()) == [k * 10 for k in range(1, 10)]

    def test_minimum_maximum(self, tree):
        for key in [5, 3, 8]:
            tree.insert(key, str(key))
        assert tree.minimum() == (3, "3")
        assert tree.maximum() == (8, "8")

    def test_minimum_empty_raises(self, tree):
        with pytest.raises(KeyError):
            tree.minimum()
        with pytest.raises(KeyError):
            tree.maximum()

    def test_range_scan(self, tree):
        for key in range(20):
            tree.insert(key, key)
        assert [k for k, _v in tree.range(5, 9)] == [5, 6, 7, 8, 9]
        assert [k for k, _v in tree.range(18, 30)] == [18, 19]
        assert list(tree.range(25, 30)) == []

    def test_range_on_tuple_keys(self, tree):
        keys = [(b"b", b"1"), (b"a", b"2"), (b"b", b"0"), (b"a", b"1")]
        for key in keys:
            tree.insert(key, None)
        selected = [k for k, _v in tree.range((b"a", b""), (b"a", b"~"))]
        assert selected == [(b"a", b"1"), (b"a", b"2")]

    def test_pop_minimum(self, tree):
        for key in [3, 1, 2]:
            tree.insert(key, key)
        assert tree.pop_minimum() == (1, 1)
        assert tree.pop_minimum() == (2, 2)
        assert len(tree) == 1

    def test_pop_minimum_empty_raises(self, tree):
        with pytest.raises(KeyError):
            tree.pop_minimum()


class TestDeletion:
    def test_delete_present(self, tree):
        for key in range(10):
            tree.insert(key, key)
        assert tree.delete(5)
        assert 5 not in tree
        assert len(tree) == 9
        assert list(tree.keys()) == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_delete_absent(self, tree):
        assert not tree.delete("nope")

    def test_delete_all_ascending(self, tree):
        for key in range(50):
            tree.insert(key, key)
        for key in range(50):
            assert tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_root_repeatedly(self, tree):
        for key in range(20):
            tree.insert(key, key)
        while tree:
            key, _value = tree.minimum()
            tree.delete(key)
            tree.check_invariants()

    def test_clear(self, tree):
        for key in range(10):
            tree.insert(key, key)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.insert(1, 1)  # usable after clear
        assert tree[1] == 1


class TestInvariants:
    def test_invariants_after_sequential_inserts(self, tree):
        for key in range(200):
            tree.insert(key, key)
            tree.check_invariants()

    def test_invariants_after_reverse_inserts(self, tree):
        for key in reversed(range(200)):
            tree.insert(key, key)
        tree.check_invariants()

    def test_invariants_interleaved(self, tree):
        for key in range(100):
            tree.insert((key * 37) % 100, key)
        for key in range(0, 100, 3):
            tree.delete(key)
        tree.check_invariants()
        survivors = [k for k in range(100) if k % 3 != 0]
        assert list(tree.keys()) == survivors

    def test_large_tree_depth_is_logarithmic(self, tree):
        # Black height of a 2^k-node red-black tree is at most ~k.
        for key in range(4096):
            tree.insert(key, None)
        black_height = tree.check_invariants()
        assert black_height <= 13
