"""Unit tests for the GODIVA statistics object."""

from repro.core.stats import GodivaStats


def test_defaults_zero():
    stats = GodivaStats()
    assert stats.units_added == 0
    assert stats.wait_seconds == 0.0
    assert stats.visible_io_seconds == 0.0


def test_visible_io_is_wait_plus_foreground():
    stats = GodivaStats()
    stats.wait_seconds = 1.5
    stats.foreground_read_seconds = 2.0
    stats.io_thread_read_seconds = 99.0  # background: not visible
    assert stats.visible_io_seconds == 3.5


def test_snapshot_contains_every_field_plus_derived():
    stats = GodivaStats()
    stats.units_added = 3
    snap = stats.snapshot()
    assert snap["units_added"] == 3
    assert "visible_io_seconds" in snap
    assert "evictions" in snap
    # snapshot is a copy
    snap["units_added"] = 99
    assert stats.units_added == 3


def test_reset():
    stats = GodivaStats()
    stats.units_added = 5
    stats.wait_seconds = 1.0
    stats.reset()
    assert stats.units_added == 0
    assert stats.wait_seconds == 0.0


def test_snapshot_keys_track_dataclass_fields_exactly():
    """Regression: adding a GodivaStats field must extend snapshot() too.

    snapshot() iterates __dataclass_fields__, so every scalar field must
    appear under its own name; wait_samples is deliberately summarized
    into derived keys instead of copied raw.
    """
    stats = GodivaStats()
    snap = stats.snapshot()
    fields = set(stats.__dataclass_fields__)
    expected_scalar = fields - {"wait_samples"}
    derived = {
        "visible_io_seconds",
        "wait_count",
        "wait_mean_seconds",
        "wait_max_seconds",
    }
    assert expected_scalar <= set(snap), (
        "snapshot() is missing dataclass fields: "
        f"{sorted(expected_scalar - set(snap))}"
    )
    assert "wait_samples" not in snap
    assert set(snap) == expected_scalar | derived, (
        "snapshot() keys diverged from GodivaStats fields + derived keys"
    )


def test_merge_sums_counters_and_maxes_peaks():
    a = GodivaStats()
    a.units_added = 3
    a.wait_seconds = 1.0
    a.queue_depth_peak = 5
    a.compute_queue_depth_peak = 2
    a.derived_bytes = 100
    a.wait_samples = [0.5, 1.0]
    b = GodivaStats()
    b.units_added = 4
    b.wait_seconds = 0.25
    b.queue_depth_peak = 3
    b.compute_queue_depth_peak = 7
    b.derived_bytes = 50
    b.wait_samples = [2.0]
    a.merge(b)
    assert a.units_added == 7
    assert a.wait_seconds == 1.25
    assert a.queue_depth_peak == 5          # max, not sum
    assert a.compute_queue_depth_peak == 7  # max, not sum
    assert a.derived_bytes == 150
    assert a.wait_samples == [0.5, 1.0, 2.0]
    # the source is untouched
    assert b.units_added == 4
    assert b.wait_samples == [2.0]


def test_merge_self_is_noop():
    stats = GodivaStats()
    stats.units_added = 2
    stats.wait_samples = [1.0]
    stats.merge(stats)
    assert stats.units_added == 2
    assert stats.wait_samples == [1.0]


def test_merge_covers_every_field():
    """Regression: a new GodivaStats field must merge correctly.

    merge() iterates __dataclass_fields__, so setting every numeric
    field to 1 on both sides must produce 2 (or 1 for the declared
    peak fields, which take max).
    """
    a = GodivaStats()
    b = GodivaStats()
    for name in a.__dataclass_fields__:
        if name == "wait_samples":
            continue
        setattr(a, name, 1)
        setattr(b, name, 1)
    a.merge(b)
    for name in a.__dataclass_fields__:
        if name == "wait_samples":
            continue
        expected = 1 if name in GodivaStats._PEAK_FIELDS else 2
        assert getattr(a, name) == expected, name
