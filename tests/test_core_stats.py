"""Unit tests for the GODIVA statistics object."""

from repro.core.stats import GodivaStats


def test_defaults_zero():
    stats = GodivaStats()
    assert stats.units_added == 0
    assert stats.wait_seconds == 0.0
    assert stats.visible_io_seconds == 0.0


def test_visible_io_is_wait_plus_foreground():
    stats = GodivaStats()
    stats.wait_seconds = 1.5
    stats.foreground_read_seconds = 2.0
    stats.io_thread_read_seconds = 99.0  # background: not visible
    assert stats.visible_io_seconds == 3.5


def test_snapshot_contains_every_field_plus_derived():
    stats = GodivaStats()
    stats.units_added = 3
    snap = stats.snapshot()
    assert snap["units_added"] == 3
    assert "visible_io_seconds" in snap
    assert "evictions" in snap
    # snapshot is a copy
    snap["units_added"] = 99
    assert stats.units_added == 3


def test_reset():
    stats = GodivaStats()
    stats.units_added = 5
    stats.wait_seconds = 1.0
    stats.reset()
    assert stats.units_added == 0
    assert stats.wait_seconds == 0.0
