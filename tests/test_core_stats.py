"""Unit tests for the GODIVA statistics object."""

from repro.core.stats import GodivaStats


def test_defaults_zero():
    stats = GodivaStats()
    assert stats.units_added == 0
    assert stats.wait_seconds == 0.0
    assert stats.visible_io_seconds == 0.0


def test_visible_io_is_wait_plus_foreground():
    stats = GodivaStats()
    stats.wait_seconds = 1.5
    stats.foreground_read_seconds = 2.0
    stats.io_thread_read_seconds = 99.0  # background: not visible
    assert stats.visible_io_seconds == 3.5


def test_snapshot_contains_every_field_plus_derived():
    stats = GodivaStats()
    stats.units_added = 3
    snap = stats.snapshot()
    assert snap["units_added"] == 3
    assert "visible_io_seconds" in snap
    assert "evictions" in snap
    # snapshot is a copy
    snap["units_added"] = 99
    assert stats.units_added == 3


def test_reset():
    stats = GodivaStats()
    stats.units_added = 5
    stats.wait_seconds = 1.0
    stats.reset()
    assert stats.units_added == 0
    assert stats.wait_seconds == 0.0


def test_snapshot_keys_track_dataclass_fields_exactly():
    """Regression: adding a GodivaStats field must extend snapshot() too.

    snapshot() iterates __dataclass_fields__, so every scalar field must
    appear under its own name; wait_samples is deliberately summarized
    into derived keys instead of copied raw.
    """
    stats = GodivaStats()
    snap = stats.snapshot()
    fields = set(stats.__dataclass_fields__)
    expected_scalar = fields - {"wait_samples"}
    derived = {
        "visible_io_seconds",
        "wait_count",
        "wait_mean_seconds",
        "wait_max_seconds",
    }
    assert expected_scalar <= set(snap), (
        "snapshot() is missing dataclass fields: "
        f"{sorted(expected_scalar - set(snap))}"
    )
    assert "wait_samples" not in snap
    assert set(snap) == expected_scalar | derived, (
        "snapshot() keys diverged from GodivaStats fields + derived keys"
    )
