"""Direct unit tests for the engine layers — no full GBO involved.

Exercises eviction-policy subclasses (LRU/FIFO/MRU and injected
instances) against a standalone :class:`MemoryManager` wired to a
:class:`UnitStore` over a shared tracked lock, with the record layer
replaced by a byte-table seam.
"""

import pytest

from repro.analysis.primitives import TrackedCondition, TrackedLock
from repro.core.cache import MruEvictionPolicy
from repro.core.memory_manager import MemoryManager
from repro.core.stats import GodivaStats
from repro.core.unit_store import UnitStore
from repro.core.units import UnitState
from repro.errors import (
    DatabaseClosedError,
    MemoryBudgetError,
    UnitStateError,
    UnknownUnitError,
)


def _build(policy, budget=300):
    """A MemoryManager + UnitStore pair sharing one engine lock.

    The record layer is replaced by a plain ``sizes`` dict: eviction
    frees whatever the test charged to the unit.
    """
    lock = TrackedLock(f"engine-layer-test@{id(policy):#x}")
    cond = TrackedCondition(lock)
    stats = GodivaStats()
    store = UnitStore(lock=lock, cond=cond, stats=stats)
    manager = MemoryManager(
        budget, policy=policy, lock=lock, cond=cond, stats=stats
    )
    sizes = {}
    store.bind(memory=manager, scheduler=None)
    manager.bind(units=store, release_records=lambda name: sizes.pop(name, 0))
    return lock, cond, store, manager, sizes


def _load(cond, store, manager, sizes, name, nbytes, finished=True):
    """Materialize a RESIDENT unit charged with ``nbytes``."""
    with cond:
        unit = store.admit(name, None, 0.0)
        unit.state = UnitState.RESIDENT
        manager.charge(nbytes)
        unit.resident_bytes = nbytes
        sizes[name] = nbytes
        if finished:
            store.finish(name)
    return unit


def test_lru_evicts_least_recently_used():
    lock, cond, store, manager, sizes = _build("lru")
    for name in ("a", "b", "c"):
        _load(cond, store, manager, sizes, name, 100)
    with cond:
        manager.touch("a")  # recency order is now b, c, a
        manager.charge(100)  # forces exactly one eviction
    with lock:
        assert store.state_of("b") is UnitState.EVICTED
        assert store.state_of("a") is UnitState.RESIDENT
        assert store.state_of("c") is UnitState.RESIDENT
        assert manager.accountant.used_bytes == 300


def test_fifo_ignores_touches_and_evicts_oldest():
    lock, cond, store, manager, sizes = _build("fifo")
    for name in ("a", "b", "c"):
        _load(cond, store, manager, sizes, name, 100)
    with cond:
        manager.touch("a")  # no effect on FIFO order
        manager.charge(100)
    with lock:
        assert store.state_of("a") is UnitState.EVICTED
        assert store.state_of("b") is UnitState.RESIDENT


def test_mru_evicts_most_recently_used():
    lock, cond, store, manager, sizes = _build("mru")
    for name in ("a", "b", "c"):
        _load(cond, store, manager, sizes, name, 100)
    with cond:
        manager.touch("a")  # a becomes most recently used
        manager.charge(100)
    with lock:
        assert store.state_of("a") is UnitState.EVICTED
        assert store.state_of("c") is UnitState.RESIDENT


def test_policy_instance_is_injectable():
    policy = MruEvictionPolicy()
    lock, cond, store, manager, sizes = _build(policy)
    assert manager.policy is policy
    for name in ("a", "b"):
        _load(cond, store, manager, sizes, name, 150)
    with cond:
        manager.charge(150)
    with lock:
        assert store.state_of("b") is UnitState.EVICTED  # MRU order held


def test_charge_rejects_over_budget_and_unevictable_pressure():
    lock, cond, store, manager, sizes = _build("lru", budget=200)
    with cond:
        with pytest.raises(MemoryBudgetError):
            manager.charge(201)  # can never fit
    # An unfinished unit is not evictable: pressure must fail, not evict.
    _load(cond, store, manager, sizes, "busy", 200, finished=False)
    with cond:
        with pytest.raises(MemoryBudgetError):
            manager.charge(50)
    with lock:
        assert store.state_of("busy") is UnitState.RESIDENT


def test_set_budget_shrink_evicts_down_in_policy_order():
    lock, cond, store, manager, sizes = _build("lru")
    for name in ("a", "b", "c"):
        _load(cond, store, manager, sizes, name, 100)
    with cond:
        manager.set_budget(150)
    with lock:
        assert store.state_of("a") is UnitState.EVICTED
        assert store.state_of("b") is UnitState.EVICTED
        assert store.state_of("c") is UnitState.RESIDENT
        assert manager.accountant.used_bytes == 100
        assert manager.accountant.budget_bytes == 150


def test_evict_resets_unit_and_counts_stats():
    lock, cond, store, manager, sizes = _build("lru")
    unit = _load(cond, store, manager, sizes, "u", 100)
    with cond:
        manager.evict(unit, deleting=False)
    with lock:
        assert unit.state is UnitState.EVICTED
        assert unit.resident_bytes == 0
        assert not unit.finished
        assert manager.accountant.used_bytes == 0
        assert manager.stats.evictions == 1
        assert manager.stats.bytes_released == 100


def test_reclaim_for_evicts_idle_prefetches_first():
    lock, cond, store, manager, sizes = _build("lru")
    # Two completed prefetches nobody consumed (unfinished, unreferenced)
    idle1 = _load(cond, store, manager, sizes, "idle1", 100, finished=False)
    _load(cond, store, manager, sizes, "idle2", 100, finished=False)
    with cond:
        waiting = store.admit("wanted", None, 0.0)
        assert manager.reclaim_for(150, waiting) is True
    with lock:
        # Enough was emergency-evicted for 150 bytes to fit.
        assert manager.fits(150)
        assert idle1.state is UnitState.EVICTED
        assert not manager.rollbacks_pending()


def test_reclaim_for_refuses_a_genuine_deadlock():
    lock, cond, store, manager, sizes = _build("lru")
    # All memory held by a unit the application still references.
    _load(cond, store, manager, sizes, "held", 300, finished=False)
    with cond:
        store.require("held").ref_count = 1
        waiting = store.admit("wanted", None, 0.0)
        assert manager.reclaim_for(100, waiting) is False


class _IoThreadStub:
    """Scheduler seam that flags the calling thread as an I/O worker."""

    def is_io_thread(self, thread):
        return True

    def current_load_unit(self):
        return None

    def note_blocked(self, seconds):
        pass


def test_blocked_charge_raises_instead_of_waiting_once_closing():
    """Lost-wakeup regression: close() fires one notify_all, so an I/O
    charge that would block AFTER close has begun must raise — waiting
    would sleep forever and deadlock close()'s join()."""
    lock, cond, store, manager, sizes = _build("lru", budget=200)
    manager.bind(units=store, scheduler=_IoThreadStub(),
                 release_records=lambda name: sizes.pop(name, 0),
                 closing=lambda: True)
    _load(cond, store, manager, sizes, "pinned", 200, finished=False)
    with cond:
        with pytest.raises(DatabaseClosedError):
            manager.charge(50)  # nothing evictable -> would block


def test_store_lifecycle_guards():
    lock, cond, store, manager, sizes = _build("lru")
    with cond:
        with pytest.raises(UnknownUnitError):
            store.require("ghost")
        store.admit("u", None, 0.0)
        with pytest.raises(UnitStateError):
            store.admit("u", None, 0.0)  # active names cannot be re-added
        with pytest.raises(UnitStateError):
            store.finish("u")  # only RESIDENT units can finish
