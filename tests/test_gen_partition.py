"""Mesh partitioning with boundary-node duplication (section 4.2)."""

import numpy as np
import pytest

from repro.gen.partition import (
    block_id_string,
    duplicated_node_count,
    partition_slabs,
)
from repro.gen.tetmesh import structured_tet_block


def test_block_id_format():
    assert block_id_string(7) == "block_0007"
    assert block_id_string(119) == "block_0119"
    assert len(block_id_string(0)) == 10


@pytest.fixture(scope="module")
def mesh():
    return structured_tet_block(4, 4, 6)


def test_every_element_assigned_once(mesh):
    blocks = partition_slabs(mesh, 4)
    all_tets = np.concatenate([b.global_tet_ids for b in blocks])
    assert len(all_tets) == mesh.n_tets
    assert len(np.unique(all_tets)) == mesh.n_tets


def test_block_count_and_ids(mesh):
    blocks = partition_slabs(mesh, 5)
    assert [b.block_id for b in blocks] == [
        block_id_string(i) for i in range(5)
    ]


def test_local_meshes_valid(mesh):
    for block in partition_slabs(mesh, 4):
        block.mesh.validate()
        assert block.n_nodes == len(block.global_node_ids)
        assert block.n_tets == len(block.global_tet_ids)


def test_volume_preserved(mesh):
    blocks = partition_slabs(mesh, 4)
    total = sum(b.mesh.total_volume() for b in blocks)
    assert total == pytest.approx(mesh.total_volume())


def test_local_coordinates_match_global(mesh):
    for block in partition_slabs(mesh, 3):
        expected = mesh.nodes[block.global_node_ids]
        assert np.array_equal(block.mesh.nodes, expected)


def test_local_connectivity_maps_back(mesh):
    for block in partition_slabs(mesh, 3):
        reconstructed = block.global_node_ids[block.mesh.tets]
        assert np.array_equal(
            np.sort(reconstructed, axis=1),
            np.sort(mesh.tets[block.global_tet_ids], axis=1),
        )


def test_boundary_duplication_positive(mesh):
    """Slab interfaces duplicate nodes — 'a small amount of duplication
    of the boundary data'."""
    blocks = partition_slabs(mesh, 4)
    duplicates = duplicated_node_count(blocks)
    assert duplicates > 0
    assert duplicates < mesh.n_nodes  # small, not wholesale


def test_single_block_no_duplication(mesh):
    blocks = partition_slabs(mesh, 1)
    assert duplicated_node_count(blocks) == 0
    assert blocks[0].n_tets == mesh.n_tets


def test_axis_selection(mesh):
    for axis in (0, 1, 2):
        blocks = partition_slabs(mesh, 2, axis=axis)
        centroid_a = blocks[0].mesh.tet_centroids()[:, axis].mean()
        centroid_b = blocks[1].mesh.tet_centroids()[:, axis].mean()
        assert centroid_a < centroid_b


def test_invalid_parameters(mesh):
    with pytest.raises(ValueError):
        partition_slabs(mesh, 0)
    with pytest.raises(ValueError):
        partition_slabs(mesh, mesh.n_tets + 1)
