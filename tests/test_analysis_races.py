"""Eraser-style lockset race detector, including the acceptance self-test.

The self-test mirrors the GBO's memory-accounting pattern on a
miniature class: with the lock held on every access the detector stays
silent; with the lock deliberately removed from one access path it must
report the race — even though the unlucky interleaving never actually
corrupts anything in-process.
"""

import threading

import pytest

from repro.analysis import primitives, races
from repro.analysis.lockorder import GLOBAL_GRAPH
from repro.errors import DataRaceError


@races.guarded_by("used", lock="_lock")
class _Accountant:
    """Miniature shared counter mirroring GBO memory accounting."""

    def __init__(self):
        self._lock = primitives.TrackedLock("acct._lock")
        self.used = 0

    def charge(self, nbytes):
        with self._lock:
            self.used = self.used + nbytes

    def charge_unlocked(self, nbytes):
        # Deliberately missing `with self._lock:` — the acceptance
        # self-test calls this from a second thread to prove the
        # detector reports the empty candidate lockset.
        self.used = self.used + nbytes


@pytest.fixture
def tracker():
    """Enabled analysis with guards installed on the test class only."""
    was_enabled = primitives.analysis_enabled()
    primitives.enable()
    races.TRACKER.reset()
    races.install(_Accountant)
    try:
        yield races.TRACKER
    finally:
        races.uninstall(_Accountant)
        races.TRACKER.reset()
        GLOBAL_GRAPH.reset()
        if not was_enabled:
            primitives.disable()


def in_thread(fn, *args):
    thread = threading.Thread(target=fn, args=args)
    thread.start()
    thread.join()


class TestGuardedByMetadata:
    def test_decorator_records_field_to_lock_mapping(self):
        assert _Accountant.__guarded_fields__ == {"used": "_lock"}

    def test_stacked_decorators_merge(self):
        @races.guarded_by("alpha", lock="_lock")
        @races.guarded_by("beta", lock="_other")
        class Doubled:
            pass

        assert Doubled.__guarded_fields__ == {
            "alpha": "_lock", "beta": "_other",
        }

    def test_decorator_is_metadata_only(self):
        # Until install(), the attribute is an ordinary instance slot.
        # (Under REPRO_ANALYSIS=1 the pytest plugin has installed the
        # descriptors already; undo that first, restore afterwards.)
        races.uninstall(_Accountant)
        try:
            assert not isinstance(
                _Accountant.__dict__.get("used"), races._GuardedField
            )
        finally:
            if primitives.analysis_enabled():
                races.install(_Accountant)


class TestLocksetDetector:
    def test_consistently_locked_access_is_clean(self, tracker):
        acct = _Accountant()
        acct.charge(10)
        in_thread(acct.charge, 20)
        in_thread(acct.charge, 30)
        acct.charge(40)
        # Read under the lock too: an unlocked read after other
        # threads wrote would itself be the race the tracker flags.
        with acct._lock:
            assert acct.used == 100
        assert tracker.reports() == []
        tracker.check()  # must not raise

    def test_removed_lock_is_reported(self, tracker):
        """The acceptance self-test: drop the lock, get a report."""
        acct = _Accountant()
        acct.charge(10)
        acct.charge(20)
        in_thread(acct.charge_unlocked, 5)
        reports = tracker.reports()
        assert len(reports) == 1
        report = reports[0]
        assert report.field == "used"
        assert report.access == "write"
        description = report.describe()
        assert "data race on _Accountant.used" in description
        assert "empty" in description and "lockset" in description
        with pytest.raises(DataRaceError, match="lockset race"):
            tracker.check()

    def test_locked_then_unlocked_second_thread_reported(self, tracker):
        # The second thread starts the shared phase *with* the lock;
        # a later unlocked write empties the candidate set.
        acct = _Accountant()
        acct.charge(1)
        in_thread(acct.charge, 2)
        assert tracker.reports() == []
        in_thread(acct.charge_unlocked, 3)
        assert len(tracker.reports()) == 1

    def test_first_thread_unlocked_init_tolerated(self, tracker):
        # __init__ writes without the lock (normal pre-publication
        # pattern); only the first thread did, so no report — and the
        # candidate set starts from the *second* thread's lockset.
        acct = _Accountant()
        acct.charge_unlocked(10)
        acct.charge_unlocked(20)
        in_thread(acct.charge, 30)
        acct.charge(40)
        assert tracker.reports() == []
        tracker.check()

    def test_each_field_reported_once(self, tracker):
        acct = _Accountant()
        acct.charge(1)
        in_thread(acct.charge_unlocked, 1)
        in_thread(acct.charge_unlocked, 1)
        in_thread(acct.charge_unlocked, 1)
        assert len(tracker.reports()) == 1

    def test_distinct_instances_tracked_separately(self, tracker):
        clean = _Accountant()
        racy = _Accountant()
        clean.charge(1)
        racy.charge(1)
        in_thread(clean.charge, 2)
        in_thread(racy.charge_unlocked, 2)
        assert len(tracker.reports()) == 1

    def test_reset_clears_findings(self, tracker):
        acct = _Accountant()
        acct.charge(1)
        in_thread(acct.charge_unlocked, 1)
        assert tracker.reports()
        tracker.reset()
        assert tracker.reports() == []
        tracker.check()


class TestInstallUninstall:
    def test_install_swaps_descriptor_and_uninstall_restores(
        self, tracker
    ):
        assert isinstance(
            _Accountant.__dict__["used"], races._GuardedField
        )
        acct = _Accountant()
        acct.charge(5)
        assert acct.used == 5
        races.uninstall(_Accountant)
        # Values live in the instance __dict__, so removal is
        # transparent to live objects.
        assert "used" not in _Accountant.__dict__
        assert acct.used == 5
        acct.charge(2)
        assert acct.used == 7
        races.install(_Accountant)
        assert isinstance(
            _Accountant.__dict__["used"], races._GuardedField
        )

    def test_uninstall_without_install_is_safe(self):
        class Bare:
            __guarded_fields__ = {"x": "_lock"}

        races.uninstall(Bare)  # nothing installed: no-op, no raise
