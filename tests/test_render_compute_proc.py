"""Bit-identity of the process-backed compute plane, end to end.

The contract under test (DESIGN.md, compute plane): frames and
triangle soups produced with ``compute_backend="process"`` are
**byte-for-byte identical** to the serial build's — token transport,
worker-local compositing, and sub-block marching-tets change where
the floats are computed, never their values or order.

Marked ``races`` so the sanitizer replays the coordinator locking.
"""

import os

import numpy as np
import pytest

from repro.core.compute import ComputePool
from repro.core.compute_proc import ProcessComputePool
from repro.core.database import GBO
from repro.viz.isosurface import (
    marching_tets,
    marching_tets_pieces,
    merge_tet_pieces,
)
from repro.viz.voyager import Voyager, VoyagerConfig

pytestmark = pytest.mark.races


def _shm_entries(prefix):
    try:
        return [n for n in os.listdir("/dev/shm") if prefix in n]
    except FileNotFoundError:
        return []


def _random_mesh(n_nodes=400, n_tets=900, seed=3):
    rng = np.random.default_rng(seed)
    nodes = rng.normal(size=(n_nodes, 3))
    tets = rng.integers(0, n_nodes, size=(n_tets, 4))
    levels = rng.normal(size=n_nodes)
    carry = rng.normal(size=n_nodes)
    return nodes, tets, levels, carry


def run_frames(manifest, test, compute_workers, compute_backend,
               mode="TG", snapshot_indices=None):
    """Run one Voyager pass, capturing every frame in memory."""
    config = VoyagerConfig(
        data_dir=manifest.directory,
        test=test,
        mode=mode,
        mem_mb=384.0,
        compute_workers=compute_workers,
        compute_backend=compute_backend,
        render=True,
        snapshot_indices=snapshot_indices,
    )
    voyager = Voyager(config)
    frames = []
    voyager._maybe_write_image = (
        lambda step, image, images: frames.append(image.copy())
    )
    result = voyager.run()
    return frames, result


class TestSubBlockExtraction:
    """The sub-block kernel's merge is byte-identical by construction."""

    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 7])
    def test_merge_matches_whole_block(self, n_chunks):
        nodes, tets, levels, carry = _random_mesh()
        whole = marching_tets(nodes, tets, levels, 0.1,
                              carry_values=carry)
        bounds = np.linspace(0, len(tets), n_chunks + 1).astype(int)
        chunks = [
            marching_tets_pieces(nodes, tets, levels, 0.1,
                                 int(lo), int(hi), carry_values=carry)
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        merged = merge_tet_pieces(chunks)
        assert merged.vertices.tobytes() == whole.vertices.tobytes()
        assert merged.values.tobytes() == whole.values.tobytes()

    def test_merge_without_carry(self):
        nodes, tets, levels, _carry = _random_mesh(seed=11)
        whole = marching_tets(nodes, tets, levels, -0.2)
        chunks = [
            marching_tets_pieces(nodes, tets, levels, -0.2, lo, hi)
            for lo, hi in ((0, 300), (300, 900))
        ]
        merged = merge_tet_pieces(chunks)
        assert merged.vertices.tobytes() == whole.vertices.tobytes()
        assert merged.values.tobytes() == whole.values.tobytes()

    def test_pieces_dispatchable_on_process_pool(self):
        """The kernel round-trips through real worker processes."""
        nodes, tets, levels, carry = _random_mesh()
        whole = marching_tets(nodes, tets, levels, 0.1,
                              carry_values=carry)
        with ProcessComputePool(2, spawn_procs=2,
                                start_method="fork") as pool:
            shared = [pool.share(np.ascontiguousarray(a))
                      for a in (nodes, tets, levels, carry)]
            tasks = [
                pool.submit(marching_tets_pieces, shared[0], shared[1],
                            shared[2], 0.1, lo, hi,
                            carry_values=shared[3])
                for lo, hi in ((0, 450), (450, 900))
            ]
            merged = merge_tet_pieces([t.wait() for t in tasks])
        assert merged.vertices.tobytes() == whole.vertices.tobytes()


class TestProcessBackendVoyager:
    def test_process_frames_match_serial(self, small_dataset):
        serial, _ = run_frames(small_dataset, "complex", 1, "thread",
                               snapshot_indices=[0, 1])
        proc, result = run_frames(small_dataset, "complex", 4,
                                  "process", snapshot_indices=[0, 1])
        assert len(serial) == len(proc) == 2
        for a, b in zip(serial, proc):
            assert np.array_equal(a, b)
        assert result.gbo_stats["compute_tasks"] > 0

    def test_thread_backend_still_matches(self, small_dataset):
        """The thread path (now sub-block-splitting) stays identical."""
        serial, _ = run_frames(small_dataset, "medium", 1, "thread",
                               snapshot_indices=[0])
        threaded, _ = run_frames(small_dataset, "medium", 4, "thread",
                                 snapshot_indices=[0])
        for a, b in zip(serial, threaded):
            assert np.array_equal(a, b)

    def test_original_mode_process_backend(self, small_dataset):
        """The O build's private pool honours the backend too."""
        serial, _ = run_frames(small_dataset, "simple", 1, "thread",
                               mode="O", snapshot_indices=[0])
        proc, _ = run_frames(small_dataset, "simple", 2, "process",
                             mode="O", snapshot_indices=[0])
        for a, b in zip(serial, proc):
            assert np.array_equal(a, b)


class TestGBOBackendWiring:
    def test_backend_validated(self):
        with pytest.raises(ValueError, match="compute_backend"):
            GBO(mem_mb=64.0, compute_backend="greenlet")

    def test_thread_backend_is_default(self):
        with GBO(mem_mb=64.0, compute_workers=2) as gbo:
            assert gbo.compute_backend == "thread"
            assert isinstance(gbo.compute, ComputePool)

    def test_process_backend_owns_an_arena(self):
        """No injected arena: the GBO creates one for the token path
        and tears it down (no /dev/shm residue) at close."""
        gbo = GBO(mem_mb=64.0, compute_workers=2,
                  compute_backend="process")
        assert gbo.compute_backend == "process"
        assert isinstance(gbo.compute, ProcessComputePool)
        prefix = gbo.compute.shm_prefix
        gbo.close()
        assert _shm_entries(prefix) == []

    def test_serial_process_backend_never_forks(self):
        with GBO(mem_mb=64.0, compute_workers=1,
                 compute_backend="process") as gbo:
            assert isinstance(gbo.compute, ComputePool)
