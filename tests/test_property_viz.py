"""Property-based tests for the visualization kernels (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gen.tetmesh import structured_tet_block
from repro.viz.colormap import Colormap
from repro.viz.geometry import element_to_node
from repro.viz.isosurface import marching_tets
from repro.viz.slice_plane import slice_mesh

_MESH = structured_tet_block(3, 3, 3)

node_values = arrays(
    dtype="<f8",
    shape=_MESH.n_nodes,
    elements=st.floats(-10.0, 10.0),
)


@settings(max_examples=40, deadline=None)
@given(values=node_values, iso=st.floats(-9.0, 9.0))
def test_marching_tets_vertices_inside_domain(values, iso):
    soup = marching_tets(_MESH.nodes, _MESH.tets, values, iso)
    if soup.n_triangles:
        flat = soup.vertices.reshape(-1, 3)
        assert flat.min() >= -1e-9
        assert flat.max() <= 1 + 1e-9


@settings(max_examples=40, deadline=None)
@given(values=node_values, iso=st.floats(-9.0, 9.0))
def test_marching_tets_triangle_count_bounded(values, iso):
    """Each tet emits at most 2 triangles."""
    soup = marching_tets(_MESH.nodes, _MESH.tets, values, iso)
    assert soup.n_triangles <= 2 * _MESH.n_tets


@settings(max_examples=40, deadline=None)
@given(values=node_values, iso=st.floats(-9.0, 9.0))
def test_marching_tets_values_equal_isovalue(values, iso):
    soup = marching_tets(_MESH.nodes, _MESH.tets, values, iso)
    if soup.n_triangles:
        assert np.allclose(soup.values, iso, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    values=node_values,
    offset=st.floats(0.05, 0.95),
    axis=st.integers(0, 2),
)
def test_slice_plane_vertices_on_plane(values, offset, axis):
    origin = [0.5, 0.5, 0.5]
    origin[axis] = offset
    normal = [0.0, 0.0, 0.0]
    normal[axis] = 1.0
    soup = slice_mesh(_MESH.nodes, _MESH.tets, values, origin, normal)
    coords = soup.vertices.reshape(-1, 3)[:, axis]
    assert np.allclose(coords, offset, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    elem_values=arrays(
        dtype="<f8", shape=_MESH.n_tets,
        elements=st.floats(-5.0, 5.0),
    )
)
def test_element_to_node_within_bounds(elem_values):
    """Averaging never exceeds the element extrema."""
    node = element_to_node(_MESH.n_nodes, _MESH.tets, elem_values)
    assert node.min() >= elem_values.min() - 1e-12
    assert node.max() <= elem_values.max() + 1e-12


@settings(max_examples=40, deadline=None)
@given(
    values=arrays(dtype="<f8", shape=16,
                  elements=st.floats(-100.0, 100.0)),
)
def test_colormap_output_in_unit_cube(values):
    for name in Colormap.names():
        rgb = Colormap(name).map(values)
        assert rgb.min() >= 0.0
        assert rgb.max() <= 1.0
        assert rgb.shape == (16, 3)


@settings(max_examples=40, deadline=None)
@given(
    a=st.floats(-100.0, 100.0),
    b=st.floats(-100.0, 100.0),
)
def test_gray_colormap_monotone(a, b):
    """Larger values never map darker under 'gray'."""
    low, high = min(a, b), max(a, b)
    rgb = Colormap("gray", vmin=-100.0, vmax=100.0).map(
        np.array([low, high])
    )
    assert (rgb[1] >= rgb[0] - 1e-12).all()
