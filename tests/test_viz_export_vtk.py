"""Legacy-VTK export: structure and numeric fidelity of the output."""

import numpy as np
import pytest

from repro.gen.tetmesh import structured_tet_block
from repro.viz.export_vtk import write_tet_mesh, write_triangle_soup
from repro.viz.isosurface import TriangleSoup, marching_tets


def parse_vtk_sections(path):
    """Minimal legacy-VTK parser for test verification."""
    lines = open(path).read().splitlines()
    assert lines[0].startswith("# vtk DataFile Version 2.0")
    assert lines[2] == "ASCII"
    sections = {}
    index = 3
    current = None
    while index < len(lines):
        line = lines[index]
        head = line.split()
        if head and head[0] in (
            "DATASET", "POINTS", "POLYGONS", "CELLS", "CELL_TYPES",
            "POINT_DATA", "CELL_DATA", "SCALARS", "VECTORS",
        ):
            current = head[0] if head[0] != "SCALARS" else \
                f"SCALARS:{head[1]}"
            if head[0] == "VECTORS":
                current = f"VECTORS:{head[1]}"
            sections[current] = {"header": head, "rows": []}
        elif current and line and line != "LOOKUP_TABLE default":
            sections[current]["rows"].append(line.split())
        index += 1
    return sections


@pytest.fixture
def soup():
    mesh = structured_tet_block(3, 3, 3)
    values = mesh.nodes[:, 2] * 10.0
    return marching_tets(mesh.nodes, mesh.tets, values, 5.0)


class TestTriangleSoupExport:
    def test_polydata_structure(self, soup, tmp_path):
        path = str(tmp_path / "surface.vtk")
        count = write_triangle_soup(path, soup, scalar_name="temp")
        assert count == soup.n_triangles
        sections = parse_vtk_sections(path)
        assert sections["DATASET"]["header"][1] == "POLYDATA"
        assert int(sections["POINTS"]["header"][1]) == \
            3 * soup.n_triangles
        assert int(sections["POLYGONS"]["header"][1]) == \
            soup.n_triangles
        assert len(sections["SCALARS:temp"]["rows"]) == \
            3 * soup.n_triangles

    def test_vertex_coordinates_roundtrip(self, soup, tmp_path):
        path = str(tmp_path / "surface.vtk")
        write_triangle_soup(path, soup)
        sections = parse_vtk_sections(path)
        points = np.array(
            sections["POINTS"]["rows"], dtype=np.float64
        )
        assert np.allclose(points, soup.vertices.reshape(-1, 3))

    def test_scalars_roundtrip(self, soup, tmp_path):
        path = str(tmp_path / "surface.vtk")
        write_triangle_soup(path, soup)
        sections = parse_vtk_sections(path)
        values = np.array(
            sections["SCALARS:value"]["rows"], dtype=np.float64
        ).reshape(-1)
        assert np.allclose(values, soup.values.reshape(-1))

    def test_empty_soup(self, tmp_path):
        path = str(tmp_path / "empty.vtk")
        assert write_triangle_soup(path, TriangleSoup.empty()) == 0
        sections = parse_vtk_sections(path)
        assert int(sections["POINTS"]["header"][1]) == 0


class TestTetMeshExport:
    def test_unstructured_grid_structure(self, tmp_path):
        mesh = structured_tet_block(2, 2, 2)
        path = str(tmp_path / "mesh.vtk")
        count = write_tet_mesh(
            path, mesh,
            point_data={"temp": np.arange(mesh.n_nodes, dtype=float),
                        "vel": np.zeros((mesh.n_nodes, 3))},
            cell_data={"strain": np.ones(mesh.n_tets)},
        )
        assert count == mesh.n_tets
        sections = parse_vtk_sections(path)
        assert sections["DATASET"]["header"][1] == "UNSTRUCTURED_GRID"
        assert int(sections["POINTS"]["header"][1]) == mesh.n_nodes
        assert int(sections["CELLS"]["header"][1]) == mesh.n_tets
        types = {row[0] for row in sections["CELL_TYPES"]["rows"]}
        assert types == {"10"}   # VTK_TETRA
        assert len(sections["SCALARS:temp"]["rows"]) == mesh.n_nodes
        assert len(sections["VECTORS:vel"]["rows"]) == mesh.n_nodes
        assert len(sections["SCALARS:strain"]["rows"]) == mesh.n_tets

    def test_connectivity_roundtrip(self, tmp_path):
        mesh = structured_tet_block(1, 1, 1)
        path = str(tmp_path / "mesh.vtk")
        write_tet_mesh(path, mesh)
        sections = parse_vtk_sections(path)
        cells = np.array(sections["CELLS"]["rows"], dtype=int)
        assert (cells[:, 0] == 4).all()
        assert np.array_equal(cells[:, 1:], mesh.tets)

    def test_spaces_in_names_sanitized(self, tmp_path):
        mesh = structured_tet_block(1, 1, 1)
        path = str(tmp_path / "mesh.vtk")
        write_tet_mesh(
            path, mesh,
            point_data={"ave stress": np.zeros(mesh.n_nodes)},
        )
        assert "SCALARS ave_stress double 1" in open(path).read()

    def test_wrong_lengths_rejected(self, tmp_path):
        mesh = structured_tet_block(1, 1, 1)
        path = str(tmp_path / "mesh.vtk")
        with pytest.raises(ValueError, match="point data"):
            write_tet_mesh(path, mesh,
                           point_data={"x": np.zeros(3)})
        with pytest.raises(ValueError, match="cell data"):
            write_tet_mesh(path, mesh,
                           cell_data={"x": np.zeros(3)})

    def test_bad_attribute_shape_rejected(self, tmp_path):
        mesh = structured_tet_block(1, 1, 1)
        path = str(tmp_path / "mesh.vtk")
        with pytest.raises(ValueError, match="expected"):
            write_tet_mesh(
                path, mesh,
                point_data={"m": np.zeros((mesh.n_nodes, 2))},
            )
