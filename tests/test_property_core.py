"""Property-based tests for the GODIVA core (hypothesis).

A stateful machine drives a single-thread GBO through the full unit
lifecycle against a simple Python model; separate properties cover key
normalization and record round-trips with random schemas.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.database import GBO
from repro.core.index import normalize_key_values
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.core.units import UnitState

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 12, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


@given(st.lists(st.one_of(
    st.binary(max_size=16),
    st.text(alphabet=st.characters(max_codepoint=127), max_size=16),
)))
def test_key_normalization_stable(values):
    normalized = normalize_key_values(values)
    assert normalize_key_values(normalized) == normalized
    assert all(isinstance(v, bytes) for v in normalized)


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=64).map(lambda n: n * 8),
        min_size=1, max_size=6,
    ),
)
def test_record_roundtrip_random_buffer_sizes(sizes):
    """Allocate random-size buffers, fill with known data, read back."""
    with GBO(mem_mb=4, background_io=False) as gbo:
        fields = [SchemaField("key", DataType.STRING, 4, is_key=True)]
        fields += [
            SchemaField(f"f{i}", DataType.DOUBLE)
            for i in range(len(sizes))
        ]
        RecordSchema("rec", tuple(fields)).ensure(gbo)
        record = gbo.new_record("rec")
        record.field("key").write(b"K001")
        payloads = {}
        for i, nbytes in enumerate(sizes):
            gbo.alloc_field_buffer(record, f"f{i}", nbytes)
            data = np.arange(nbytes // 8, dtype="<f8") * (i + 1)
            record.field(f"f{i}").write(data)
            payloads[f"f{i}"] = data
        gbo.commit_record(record)
        for name, data in payloads.items():
            back = gbo.get_field_buffer("rec", name, [b"K001"])
            assert np.array_equal(back, data)
            assert gbo.get_field_buffer_size(
                "rec", name, [b"K001"]
            ) == data.nbytes


class GboUnitMachine(RuleBasedStateMachine):
    """Random unit-lifecycle operations vs. a dict model.

    Uses the single-thread build so every transition is synchronous and
    model-checkable. The model tracks each unit's conceptual state:
    'queued', 'resident' (with ref count), or 'gone'.
    """

    unit_names = st.sampled_from([f"u{i}" for i in range(6)])

    def __init__(self):
        super().__init__()
        self.gbo = GBO(mem_mb=8, background_io=False)
        ITEM.ensure(self.gbo)
        self.model = {}
        self.loaded_payload = {}

    def teardown(self):
        self.gbo.close()

    def _read_fn(self, gbo, unit_name):
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(12).encode())
        gbo.alloc_field_buffer(record, "data", 64)
        record.field("data").as_array()[:] = self.loaded_payload[
            unit_name
        ]
        gbo.commit_record(record)

    @rule(name=unit_names, payload=st.floats(0.0, 100.0))
    def add(self, name, payload):
        state = self.model.get(name)
        if state in ("queued", "resident"):
            from repro.errors import UnitStateError
            try:
                self.gbo.add_unit(name, self._read_fn)
                raise AssertionError("expected UnitStateError")
            except UnitStateError:
                return
        self.loaded_payload[name] = payload
        self.gbo.add_unit(name, self._read_fn)
        self.model[name] = "queued"

    @rule(name=unit_names)
    def wait(self, name):
        state = self.model.get(name)
        if state is None or state == "gone":
            from repro.errors import (
                UnitStateError,
                UnknownUnitError,
            )
            try:
                self.gbo.wait_unit(name)
                raise AssertionError("expected an error")
            except (UnknownUnitError, UnitStateError):
                return
        self.gbo.wait_unit(name)
        self.model[name] = "resident"
        value = self.gbo.get_field_buffer(
            "item", "data", [name.ljust(12).encode()]
        )[0]
        assert value == self.loaded_payload[name]

    @rule(name=unit_names)
    def finish(self, name):
        state = self.model.get(name)
        if state != "resident":
            from repro.errors import (
                UnitStateError,
                UnknownUnitError,
            )
            try:
                self.gbo.finish_unit(name)
                raise AssertionError("expected an error")
            except (UnknownUnitError, UnitStateError):
                return
        self.gbo.finish_unit(name)
        # stays resident (cached) until pressure; model keeps it.

    @rule(name=unit_names)
    def delete(self, name):
        if name not in self.model:
            from repro.errors import UnknownUnitError
            try:
                self.gbo.delete_unit(name)
                raise AssertionError("expected UnknownUnitError")
            except UnknownUnitError:
                return
        self.gbo.delete_unit(name)
        self.model[name] = "gone"

    @invariant()
    def states_agree(self):
        for name, state in self.model.items():
            actual = self.gbo.unit_state(name)
            if state == "queued":
                assert actual is UnitState.QUEUED
            elif state == "resident":
                assert actual in (
                    UnitState.RESIDENT, UnitState.EVICTED
                )
            elif state == "gone":
                assert actual is UnitState.DELETED

    @invariant()
    def memory_accounting_consistent(self):
        assert 0 <= self.gbo.mem_used_bytes <= \
            self.gbo.mem_budget_bytes


TestGboUnitMachine = GboUnitMachine.TestCase
TestGboUnitMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
