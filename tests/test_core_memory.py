"""Unit tests for memory accounting (section 3.2 setMemSpace semantics)."""

import pytest

from repro.core.memory import MB, RECORD_OVERHEAD_BYTES, MemoryAccountant
from repro.errors import MemoryBudgetError


def test_mb_constant():
    assert MB == 1024 * 1024
    assert RECORD_OVERHEAD_BYTES > 0


def test_initial_state():
    acct = MemoryAccountant(1000)
    assert acct.budget_bytes == 1000
    assert acct.used_bytes == 0
    assert acct.available_bytes == 1000
    assert acct.high_water_bytes == 0


def test_zero_or_negative_budget_rejected():
    with pytest.raises(MemoryBudgetError):
        MemoryAccountant(0)
    with pytest.raises(MemoryBudgetError):
        MemoryAccountant(-5)


def test_charge_release_cycle():
    acct = MemoryAccountant(1000)
    acct.charge(400)
    assert acct.used_bytes == 400
    assert acct.available_bytes == 600
    acct.release(150)
    assert acct.used_bytes == 250


def test_fits_and_can_ever_fit():
    acct = MemoryAccountant(1000)
    acct.charge(800)
    assert acct.fits(200)
    assert not acct.fits(201)
    assert acct.can_ever_fit(1000)
    assert not acct.can_ever_fit(1001)


def test_high_water_tracks_peak():
    acct = MemoryAccountant(1000)
    acct.charge(700)
    acct.release(500)
    acct.charge(100)
    assert acct.high_water_bytes == 700
    assert acct.used_bytes == 300


def test_negative_charge_rejected():
    acct = MemoryAccountant(1000)
    with pytest.raises(ValueError):
        acct.charge(-1)
    with pytest.raises(ValueError):
        acct.release(-1)


def test_over_release_is_an_accounting_bug():
    acct = MemoryAccountant(1000)
    acct.charge(10)
    with pytest.raises(MemoryBudgetError, match="accounting bug"):
        acct.release(11)


def test_set_budget_allows_overcommit_temporarily():
    acct = MemoryAccountant(1000)
    acct.charge(900)
    acct.set_budget(500)   # shrink below usage: allowed
    assert acct.budget_bytes == 500
    assert acct.used_bytes == 900
    assert not acct.fits(1)
    acct.release(600)
    assert acct.fits(100)


def test_set_budget_invalid():
    acct = MemoryAccountant(1000)
    with pytest.raises(MemoryBudgetError):
        acct.set_budget(0)


class TestParseMemEdgeCases:
    """Edge-case coverage for the budget-spec parser.

    The happy paths live in test_database_workers; these pin the
    corners: fractional units, zero, negatives in every spelling, and
    garbage with a helpful message.
    """

    def test_fractional_unit(self):
        from repro.core.memory import parse_mem
        assert parse_mem("1.5GB") == int(1.5 * 1024 * MB)
        assert parse_mem("0.5MB") == MB // 2
        assert parse_mem(0.5) == MB // 2   # float = MB

    def test_zero_parses_everywhere(self):
        from repro.core.memory import parse_mem
        assert parse_mem("0MB") == 0
        assert parse_mem("0") == 0
        assert parse_mem(0) == 0
        assert parse_mem(0.0) == 0

    def test_whitespace_and_case_insensitive(self):
        from repro.core.memory import parse_mem
        assert parse_mem("  384mb ") == 384 * MB
        assert parse_mem("1 GB") == 1024 * MB

    @pytest.mark.parametrize(
        "spec", ["-1MB", "-5", -1, -0.5, "-0.1GB"]
    )
    def test_negative_rejected_in_every_spelling(self, spec):
        from repro.core.memory import parse_mem
        with pytest.raises(ValueError, match="non-negative"):
            parse_mem(spec)

    def test_garbage_rejected_with_helpful_message(self):
        from repro.core.memory import parse_mem
        with pytest.raises(ValueError, match="unparseable"):
            parse_mem("lots")
        # The suffix was recognised, the amount was not: the message
        # must show a working example.
        with pytest.raises(ValueError, match="384MB"):
            parse_mem("twelveMB")

    def test_non_numeric_types_rejected(self):
        from repro.core.memory import parse_mem
        with pytest.raises(TypeError):
            parse_mem(None)
        with pytest.raises(TypeError):
            parse_mem(True)   # bool is not a byte count
