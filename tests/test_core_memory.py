"""Unit tests for memory accounting (section 3.2 setMemSpace semantics)."""

import pytest

from repro.core.memory import MB, RECORD_OVERHEAD_BYTES, MemoryAccountant
from repro.errors import MemoryBudgetError


def test_mb_constant():
    assert MB == 1024 * 1024
    assert RECORD_OVERHEAD_BYTES > 0


def test_initial_state():
    acct = MemoryAccountant(1000)
    assert acct.budget_bytes == 1000
    assert acct.used_bytes == 0
    assert acct.available_bytes == 1000
    assert acct.high_water_bytes == 0


def test_zero_or_negative_budget_rejected():
    with pytest.raises(MemoryBudgetError):
        MemoryAccountant(0)
    with pytest.raises(MemoryBudgetError):
        MemoryAccountant(-5)


def test_charge_release_cycle():
    acct = MemoryAccountant(1000)
    acct.charge(400)
    assert acct.used_bytes == 400
    assert acct.available_bytes == 600
    acct.release(150)
    assert acct.used_bytes == 250


def test_fits_and_can_ever_fit():
    acct = MemoryAccountant(1000)
    acct.charge(800)
    assert acct.fits(200)
    assert not acct.fits(201)
    assert acct.can_ever_fit(1000)
    assert not acct.can_ever_fit(1001)


def test_high_water_tracks_peak():
    acct = MemoryAccountant(1000)
    acct.charge(700)
    acct.release(500)
    acct.charge(100)
    assert acct.high_water_bytes == 700
    assert acct.used_bytes == 300


def test_negative_charge_rejected():
    acct = MemoryAccountant(1000)
    with pytest.raises(ValueError):
        acct.charge(-1)
    with pytest.raises(ValueError):
        acct.release(-1)


def test_over_release_is_an_accounting_bug():
    acct = MemoryAccountant(1000)
    acct.charge(10)
    with pytest.raises(MemoryBudgetError, match="accounting bug"):
        acct.release(11)


def test_set_budget_allows_overcommit_temporarily():
    acct = MemoryAccountant(1000)
    acct.charge(900)
    acct.set_budget(500)   # shrink below usage: allowed
    assert acct.budget_bytes == 500
    assert acct.used_bytes == 900
    assert not acct.fits(1)
    acct.release(600)
    assert acct.fits(100)


def test_set_budget_invalid():
    acct = MemoryAccountant(1000)
    with pytest.raises(MemoryBudgetError):
        acct.set_budget(0)
