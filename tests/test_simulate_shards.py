"""Simulated sharded-GBO sweep: scaling shape and placement fidelity."""

import pytest

from repro.io.readers import snapshot_unit_name
from repro.parallel.placement import PlacementMap
from repro.simulate.machine import ENGLE, TURING
from repro.simulate.shards import (
    DEFAULT_SHARD_COUNTS,
    shard_sweep,
    simulate_sharded_gbo,
)
from repro.simulate.workload import IoProfile, TestWorkload


def make_workload(n_snapshots=96, compute_s=0.8):
    return TestWorkload(
        test="complex",
        n_snapshots=n_snapshots,
        original=IoProfile(bytes_read=120e6, read_calls=600, seeks=60,
                           settles=480, opens=48),
        godiva=IoProfile(bytes_read=20e6, read_calls=100, seeks=10,
                         settles=80, opens=8),
        compute_s=compute_s,
    )


def test_every_unit_simulated_once():
    workload = make_workload(40)
    run = simulate_sharded_gbo(ENGLE, workload, 4)
    assert sum(w.n_units for w in run.workers) == 40


def test_assignment_matches_live_placement():
    """The simulator shards exactly as the real coordinator would."""
    workload = make_workload(30)
    run = simulate_sharded_gbo(ENGLE, workload, 3)
    placement = PlacementMap([f"shard{i}" for i in range(3)])
    groups = placement.partition(
        [snapshot_unit_name(step) for step in range(30)]
    )
    per_shard = {w.worker: w.n_units for w in run.workers}
    for i in range(3):
        assert per_shard.get(i, 0) == len(groups[f"shard{i}"])


def test_deterministic():
    workload = make_workload()
    first = simulate_sharded_gbo(ENGLE, workload, 8)
    second = simulate_sharded_gbo(ENGLE, workload, 8)
    assert first.makespan_s == second.makespan_s
    assert first.disk_busy_s == second.disk_busy_s


def test_private_disk_scaling_hits_the_bar():
    """The issue's acceptance bar: >= 2x throughput at 4 shards."""
    sweep = shard_sweep(ENGLE, make_workload())
    assert [p.n_shards for p in sweep.points] == list(
        DEFAULT_SHARD_COUNTS
    )
    one = sweep.point(1)
    four = sweep.point(4)
    assert four.throughput_units_s >= 2.0 * one.throughput_units_s
    assert one.speedup == 1.0
    # Dozens of simulated shard hosts at the top end keep helping.
    top = sweep.points[-1]
    assert top.n_shards >= 24
    assert top.speedup > four.speedup


def test_shared_disk_saturates():
    """One shared device bounds the fleet: adding shards stops paying
    long before the private-disk regime does."""
    workload = make_workload()
    private = shard_sweep(ENGLE, workload, shard_counts=(1, 32))
    shared = shard_sweep(ENGLE, workload, shard_counts=(1, 32),
                         shared_disk=True)
    assert shared.point(32).speedup < private.point(32).speedup
    # The shared disk is busy the same total seconds regardless of
    # shard count; the makespan can never beat that floor.
    run32 = simulate_sharded_gbo(ENGLE, workload, 32, shared_disk=True)
    assert run32.makespan_s >= run32.disk_busy_s


def test_balance_reports_placement_skew():
    sweep = shard_sweep(TURING, make_workload(), shard_counts=(1, 32))
    assert sweep.point(1).balance == 1.0
    # 3 units/shard on average: binomial skew is visible but bounded.
    assert 1.0 < sweep.point(32).balance < 4.0


def test_validation():
    workload = make_workload(8)
    with pytest.raises(ValueError):
        simulate_sharded_gbo(ENGLE, workload, 0)
    with pytest.raises(ValueError):
        simulate_sharded_gbo(ENGLE, workload, 2, window_units=0)


def test_point_lookup_raises_on_missing():
    sweep = shard_sweep(ENGLE, make_workload(16), shard_counts=(1, 2))
    with pytest.raises(KeyError):
        sweep.point(7)
