"""The godiva-inspect CLI tool."""

import numpy as np
import pytest

from repro.io.inspect import describe_dataset, describe_file, main
from repro.io.sdf import SdfWriter


@pytest.fixture
def sample_file(tmp_path):
    path = str(tmp_path / "sample.sdf")
    with SdfWriter(path) as writer:
        writer.set_attribute("timestep", "0.000025$")
        writer.add_dataset("coords", np.zeros((10, 3)))
        writer.add_dataset("scalar", np.float64(1.0))
    return path


def test_describe_file(sample_file):
    lines = describe_file(sample_file)
    text = "\n".join(lines)
    assert "SDF" in lines[0]
    assert "timestep" in text
    assert "coords" in text
    assert "10x3" in text
    assert "scalar" in text


def test_describe_file_no_attrs(sample_file):
    text = "\n".join(describe_file(sample_file, show_attrs=False))
    assert "timestep" not in text


def test_describe_cdf_file(tmp_path):
    from repro.io.cdf import CdfWriter

    path = str(tmp_path / "sample.cdf")
    with CdfWriter(path) as writer:
        writer.add_dataset("x", np.zeros(4))
    lines = describe_file(path)
    assert "CDF" in lines[0]


def test_describe_dataset(small_dataset):
    lines = describe_dataset(small_dataset.directory)
    text = "\n".join(lines)
    assert f"blocks        : {small_dataset.n_blocks}" in text
    assert "snapshots     : 4" in text
    assert "MB/snapshot" in text


def test_main_on_file(sample_file, capsys):
    assert main([sample_file]) == 0
    out = capsys.readouterr().out
    assert "coords" in out


def test_main_on_directory(small_dataset, capsys):
    assert main([small_dataset.directory]) == 0
    assert "snapshots" in capsys.readouterr().out


def test_main_no_attrs_flag(sample_file, capsys):
    assert main([sample_file, "--no-attrs"]) == 0
    assert "timestep" not in capsys.readouterr().out


def test_long_attribute_truncated(tmp_path, capsys):
    path = str(tmp_path / "long.sdf")
    with SdfWriter(path) as writer:
        writer.set_attribute("blob", "x" * 500)
        writer.add_dataset("d", np.zeros(1))
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "..." in out
    assert "x" * 500 not in out
