"""Snapshot partitioning and the multi-process Voyager launcher."""

import numpy as np
import pytest

from repro.parallel.launcher import ParallelResult, run_parallel_voyager
from repro.parallel.scheduler import partition_snapshots
from repro.viz.voyager import Voyager, VoyagerConfig


class TestPartitioning:
    def test_block_even_split(self):
        assert partition_snapshots(8, 4) == [
            [0, 1], [2, 3], [4, 5], [6, 7]
        ]

    def test_block_uneven_split(self):
        parts = partition_snapshots(10, 3)
        assert parts == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_cyclic(self):
        assert partition_snapshots(7, 3, "cyclic") == [
            [0, 3, 6], [1, 4], [2, 5]
        ]

    def test_every_snapshot_exactly_once(self):
        for strategy in ("block", "cyclic"):
            for n, w in ((13, 4), (4, 7), (0, 3)):
                parts = partition_snapshots(n, w, strategy)
                flat = sorted(i for part in parts for i in part)
                assert flat == list(range(n))
                assert len(parts) == w

    def test_more_workers_than_snapshots(self):
        parts = partition_snapshots(2, 5)
        assert sum(len(p) for p in parts) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_snapshots(4, 0)
        with pytest.raises(ValueError):
            partition_snapshots(-1, 2)
        with pytest.raises(ValueError):
            partition_snapshots(4, 2, "zigzag")

    def test_invalid_names_every_strategy(self):
        with pytest.raises(ValueError) as excinfo:
            partition_snapshots(4, 2, "zigzag")
        message = str(excinfo.value)
        for strategy in ("block", "cyclic", "weighted"):
            assert repr(strategy) in message

    def test_weighted_balances_loads(self):
        # One heavy snapshot: LPT puts it alone, the six light ones
        # share the other worker.
        parts = partition_snapshots(
            7, 2, "weighted", weights=[6, 1, 1, 1, 1, 1, 1]
        )
        assert parts == [[0], [1, 2, 3, 4, 5, 6]]

    def test_weighted_every_snapshot_exactly_once(self):
        weights = [(i * 7 + 3) % 11 + 1 for i in range(13)]
        parts = partition_snapshots(13, 4, "weighted", weights=weights)
        flat = sorted(i for part in parts for i in part)
        assert flat == list(range(13))
        assert all(part == sorted(part) for part in parts)

    def test_weighted_deterministic(self):
        weights = [3.0, 3.0, 3.0, 3.0]
        first = partition_snapshots(4, 2, "weighted", weights=weights)
        second = partition_snapshots(4, 2, "weighted", weights=weights)
        assert first == second

    def test_weighted_uniform_defaults(self):
        # No weights -> every snapshot costs 1; counts stay even.
        parts = partition_snapshots(8, 3, "weighted")
        assert sorted(len(p) for p in parts) == [2, 3, 3]

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            partition_snapshots(4, 2, "weighted", weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            partition_snapshots(
                3, 2, "weighted", weights=[1.0, -2.0, 1.0]
            )


class TestParallelRun:
    def base_config(self, dataset, **kwargs):
        kwargs.setdefault("render", False)
        return VoyagerConfig(
            data_dir=dataset.directory,
            test="simple",
            mode="G",
            mem_mb=64.0,
            **kwargs,
        )

    def test_inprocess_two_workers(self, small_dataset):
        result = run_parallel_voyager(
            self.base_config(small_dataset), n_workers=2,
            use_processes=False,
        )
        assert isinstance(result, ParallelResult)
        assert result.n_workers == 2
        assert result.n_snapshots == 4
        assert [w.n_snapshots for w in result.workers] == [2, 2]
        assert result.makespan_s > 0
        assert result.total_bytes_read > 0

    def test_volume_matches_serial(self, small_dataset):
        """Workers read disjoint snapshots: total volume equals the
        one-worker volume (the paper's near-zero-communication claim)."""
        serial = run_parallel_voyager(
            self.base_config(small_dataset), n_workers=1,
            use_processes=False,
        )
        parallel = run_parallel_voyager(
            self.base_config(small_dataset), n_workers=4,
            use_processes=False,
        )
        assert parallel.total_bytes_read == serial.total_bytes_read

    def test_multiprocess_run(self, small_dataset):
        result = run_parallel_voyager(
            self.base_config(small_dataset), n_workers=2,
            use_processes=True,
        )
        assert result.n_snapshots == 4
        assert all(w.bytes_read > 0 for w in result.workers)

    def test_parallel_images_match_serial(self, small_dataset,
                                          tmp_path):
        serial = Voyager(self.base_config(
            small_dataset, out_dir=str(tmp_path / "serial"),
            render=True,
        )).run()
        parallel = run_parallel_voyager(
            self.base_config(
                small_dataset, out_dir=str(tmp_path / "par"),
                render=True,
            ),
            n_workers=2, use_processes=False,
        )
        from repro.viz.image import read_ppm

        parallel_images = sorted(
            path for worker in parallel.workers
            for path in worker.images
        )
        assert len(parallel_images) == len(serial.images)
        for a, b in zip(sorted(serial.images), parallel_images):
            assert np.array_equal(read_ppm(a), read_ppm(b))

    def test_steps_limit_respected(self, small_dataset):
        result = run_parallel_voyager(
            self.base_config(small_dataset, steps=3), n_workers=2,
            use_processes=False,
        )
        assert result.n_snapshots == 3
