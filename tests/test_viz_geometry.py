"""Boundary faces, normals, element-to-node averaging."""

import numpy as np
import pytest

from repro.gen.tetmesh import structured_tet_block
from repro.viz.geometry import (
    boundary_faces,
    element_to_node,
    node_tet_counts,
    triangle_areas,
    triangle_normals,
)


class TestBoundaryFaces:
    def test_single_tet_has_four_boundary_faces(self):
        tets = np.array([[0, 1, 2, 3]])
        assert len(boundary_faces(tets)) == 4

    def test_cube_boundary_face_count(self):
        """An (n,n,n) Kuhn-split cube exposes 4 triangles per cube face
        pair... exactly: each of the 6 cube faces is split into 2n^2
        triangles -> 12 n^2 total."""
        for n in (1, 2, 3):
            mesh = structured_tet_block(n, n, n)
            faces = boundary_faces(mesh.tets)
            assert len(faces) == 12 * n * n

    def test_boundary_faces_lie_on_surface(self):
        mesh = structured_tet_block(2, 2, 2)
        faces = boundary_faces(mesh.tets)
        vertices = mesh.nodes[faces]
        # Every boundary triangle has all three corners on the cube skin.
        on_skin = np.any(
            np.isclose(vertices, 0.0) | np.isclose(vertices, 1.0),
            axis=2,
        )
        assert on_skin.all()

    def test_two_adjacent_tets_share_one_face(self):
        # Two tets glued on face (1,2,3).
        tets = np.array([[0, 1, 2, 3], [4, 1, 2, 3]])
        faces = boundary_faces(tets)
        assert len(faces) == 6
        shared = {1, 2, 3}
        for face in faces:
            assert set(face.tolist()) != shared


class TestTriangleMath:
    def test_normal_of_xy_triangle(self):
        tri = np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0]]], dtype=float)
        normal = triangle_normals(tri)[0]
        assert np.allclose(normal, [0, 0, 1])

    def test_normals_unit_length(self):
        rng = np.random.default_rng(3)
        tris = rng.normal(size=(50, 3, 3))
        lengths = np.linalg.norm(triangle_normals(tris), axis=1)
        assert np.allclose(lengths, 1.0)

    def test_degenerate_triangle_zero_normal_safe(self):
        tri = np.zeros((1, 3, 3))
        normal = triangle_normals(tri)[0]
        assert np.allclose(normal, 0.0)   # no NaN

    def test_areas(self):
        tri = np.array([[[0, 0, 0], [2, 0, 0], [0, 2, 0]]], dtype=float)
        assert triangle_areas(tri)[0] == pytest.approx(2.0)


class TestElementToNode:
    def test_constant_field_preserved(self):
        mesh = structured_tet_block(2, 2, 2)
        elem = np.full(mesh.n_tets, 7.5)
        node = element_to_node(mesh.n_nodes, mesh.tets, elem)
        assert np.allclose(node, 7.5)

    def test_average_of_adjacent_elements(self):
        tets = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
        elem = np.array([1.0, 3.0])
        node = element_to_node(5, tets, elem)
        assert node[0] == 1.0            # only tet 0
        assert node[4] == 3.0            # only tet 1
        assert node[1] == pytest.approx(2.0)  # both

    def test_untouched_nodes_zero(self):
        tets = np.array([[0, 1, 2, 3]])
        node = element_to_node(6, tets, np.array([2.0]))
        assert node[4] == 0.0 and node[5] == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            element_to_node(4, np.array([[0, 1, 2, 3]]),
                            np.array([1.0, 2.0]))


class TestGoldenKernels:
    """Exact expected outputs on tiny known meshes — the reference the
    derived cache's memoized results are required to reproduce."""

    TWO_TETS = np.array([[0, 1, 2, 3], [4, 1, 2, 3]])

    def test_boundary_faces_golden_single_tet(self):
        """One tet: exactly its four faces, original winding kept."""
        faces = boundary_faces(np.array([[0, 1, 2, 3]]))
        expected = [[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]]
        assert faces.tolist() == expected

    def test_boundary_faces_golden_two_tets(self):
        """Two tets glued on (1,2,3): the shared face vanishes, the six
        outer faces remain — as an exact vertex-set enumeration."""
        faces = boundary_faces(self.TWO_TETS)
        got = {tuple(sorted(face)) for face in faces.tolist()}
        assert got == {
            (0, 1, 2), (0, 1, 3), (0, 2, 3),
            (1, 2, 4), (1, 3, 4), (2, 3, 4),
        }

    def test_node_tet_counts_golden(self):
        counts = node_tet_counts(6, self.TWO_TETS)
        assert counts.tolist() == [1.0, 2.0, 2.0, 2.0, 1.0, 0.0]
        assert counts.dtype == np.float64

    def test_element_to_node_golden(self):
        node = element_to_node(5, self.TWO_TETS, np.array([2.0, 6.0]))
        assert node.tolist() == [2.0, 4.0, 4.0, 4.0, 6.0]

    def test_element_to_node_accepts_frozen_counts(self):
        """Precomputed counts may be a shared read-only cached array;
        the kernel must not mutate it and must match the uncached
        result exactly."""
        counts = node_tet_counts(5, self.TWO_TETS)
        counts.flags.writeable = False
        elem = np.array([2.0, 6.0])
        with_counts = element_to_node(5, self.TWO_TETS, elem,
                                      counts=counts)
        without = element_to_node(5, self.TWO_TETS, elem)
        assert np.array_equal(with_counts, without)
        assert counts.tolist() == [1.0, 2.0, 2.0, 2.0, 1.0]
