"""Disk cost model and I/O statistics."""

import pytest

from repro.io.disk import (
    ENGLE_DISK,
    NULL_DISK,
    TURING_DISK,
    CostedFile,
    DiskProfile,
    IoStats,
)


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "blob.bin"
    path.write_bytes(bytes(range(256)) * 64)  # 16 KiB
    return str(path)


class TestDiskProfile:
    def test_transfer_time(self):
        profile = DiskProfile("t", seek_s=0.01,
                              bandwidth_bytes_s=1e6, open_s=0.0)
        assert profile.transfer_s(500_000) == pytest.approx(0.5)

    def test_position_cost_first_read_is_seek(self):
        assert ENGLE_DISK.position_cost_s(None) == ENGLE_DISK.seek_s

    def test_position_cost_sequential_is_free(self):
        assert ENGLE_DISK.position_cost_s(0) == 0.0

    def test_position_cost_short_forward_is_settle(self):
        assert ENGLE_DISK.position_cost_s(1024) == ENGLE_DISK.settle_s

    def test_position_cost_long_forward_is_seek(self):
        gap = ENGLE_DISK.forward_window_bytes + 1
        assert ENGLE_DISK.position_cost_s(gap) == ENGLE_DISK.seek_s

    def test_position_cost_backward_is_seek(self):
        assert ENGLE_DISK.position_cost_s(-1) == ENGLE_DISK.seek_s

    def test_named_profiles(self):
        assert ENGLE_DISK.seek_s > TURING_DISK.seek_s
        assert NULL_DISK.transfer_s(10**9) == 0.0
        assert NULL_DISK.read_cost_s(100, None) == 0.0


class TestCostedFile:
    def test_plain_read(self, sample_file):
        with CostedFile(sample_file) as f:
            data = f.read(16)
            assert data == bytes(range(16))
            assert f.tell() == 16
            assert f.size() == 16 * 1024

    def test_stats_accumulate(self, sample_file):
        stats = IoStats()
        with CostedFile(sample_file, stats=stats,
                        profile=ENGLE_DISK) as f:
            f.read(1000)           # first read: seek
            f.read(1000)           # sequential
            f.seek(8000)
            f.read(100)            # short forward: settle
            f.seek(0)
            f.read(10)             # backward: seek
        snap = stats.snapshot()
        assert snap["bytes_read"] == 2110
        assert snap["read_calls"] == 4
        assert snap["opens"] == 1
        assert snap["seeks"] == 2
        assert snap["settles"] == 1
        expected = (
            ENGLE_DISK.open_s
            + ENGLE_DISK.seek_s + ENGLE_DISK.transfer_s(1000)
            + ENGLE_DISK.transfer_s(1000)
            + ENGLE_DISK.settle_s + ENGLE_DISK.transfer_s(100)
            + ENGLE_DISK.seek_s + ENGLE_DISK.transfer_s(10)
        )
        assert snap["virtual_seconds"] == pytest.approx(expected)

    def test_per_file_bytes(self, sample_file):
        stats = IoStats()
        with CostedFile(sample_file, stats=stats) as f:
            f.read(100)
        assert stats.per_file_bytes[sample_file] == 100

    def test_seek_alone_costs_nothing(self, sample_file):
        stats = IoStats()
        with CostedFile(sample_file, stats=stats,
                        profile=ENGLE_DISK) as f:
            f.seek(1000)
            f.seek(0)
        assert stats.snapshot()["virtual_seconds"] == \
            pytest.approx(ENGLE_DISK.open_s)

    def test_reset(self, sample_file):
        stats = IoStats()
        with CostedFile(sample_file, stats=stats) as f:
            f.read(10)
        stats.reset()
        snap = stats.snapshot()
        assert snap["bytes_read"] == 0
        assert snap["opens"] == 0
        assert stats.per_file_bytes == {}

    def test_thread_safety_smoke(self, sample_file):
        import threading

        stats = IoStats()

        def worker():
            with CostedFile(sample_file, stats=stats,
                            profile=ENGLE_DISK) as f:
                for _ in range(50):
                    f.read(8)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.snapshot()["bytes_read"] == 4 * 50 * 8


class TestCostedFileClose:
    def test_close_is_idempotent(self, sample_file):
        f = CostedFile(sample_file)
        f.read(4)
        assert not f.closed
        f.close()
        assert f.closed
        f.close()   # second close: no-op, no raise
        assert f.closed

    def test_with_block_after_explicit_close(self, sample_file):
        # A callback may hand ownership around and close early; the
        # context manager's exit must then be a no-op.
        with CostedFile(sample_file) as f:
            f.read(4)
            f.close()
        assert f.closed


class TestIoStatsMerge:
    def test_self_merge_is_noop(self, sample_file):
        stats = IoStats()
        with CostedFile(sample_file, stats=stats) as f:
            f.read(100)
        before = stats.snapshot()
        stats.merge(stats)
        assert stats.snapshot() == before

    def test_merge_adds_counters_and_per_file(self, sample_file):
        total, private = IoStats(), IoStats()
        with CostedFile(sample_file, stats=total,
                        profile=ENGLE_DISK) as f:
            f.read(100)
        with CostedFile(sample_file, stats=private,
                        profile=ENGLE_DISK) as f:
            f.read(50)
        total.merge(private)
        snap = total.snapshot()
        assert snap["bytes_read"] == 150
        assert snap["opens"] == 2
        assert total.per_file_bytes[sample_file] == 150
        # The source is read, not drained.
        assert private.snapshot()["bytes_read"] == 50

    def test_concurrent_cross_merge_does_not_deadlock(self):
        """a.merge(b) racing b.merge(a): the id-ordered dual locking
        must make this safe. A join timeout converts a lock-order
        deadlock into a test failure."""
        import threading

        a, b = IoStats(), IoStats()
        a.bytes_read = 1
        b.bytes_read = 1

        def cross(dst, src):
            for _ in range(200):
                dst.merge(src)

        threads = [
            threading.Thread(target=cross, args=(a, b)),
            threading.Thread(target=cross, args=(b, a)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20.0)
        assert not any(t.is_alive() for t in threads), \
            "cross-merge deadlocked"

    def test_merge_is_atomic_against_recording(self, sample_file):
        """A record_read on the source mid-merge must not be half
        counted: totals after the dust settles have to balance."""
        import threading

        total, private = IoStats(), IoStats()

        def record():
            with CostedFile(sample_file, stats=private) as f:
                for _ in range(100):
                    f.read(8)

        recorder = threading.Thread(target=record)
        recorder.start()
        for _ in range(50):
            total.merge(private)
        recorder.join()
        final = IoStats()
        final.merge(private)
        assert final.snapshot()["bytes_read"] == 100 * 8
