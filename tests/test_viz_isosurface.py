"""Marching tetrahedra: case coverage, interpolation, surface sanity."""

import numpy as np
import pytest

from repro.gen.tetmesh import structured_tet_block
from repro.viz.geometry import triangle_areas
from repro.viz.isosurface import TriangleSoup, marching_tets

# One reference tet.
TET_NODES = np.array([
    [0.0, 0.0, 0.0],
    [1.0, 0.0, 0.0],
    [0.0, 1.0, 0.0],
    [0.0, 0.0, 1.0],
])
TET = np.array([[0, 1, 2, 3]])


class TestSingleTetCases:
    def test_all_below_and_all_above_empty(self):
        for values in ([0, 0, 0, 0], [2, 2, 2, 2]):
            soup = marching_tets(
                TET_NODES, TET, np.array(values, dtype=float), 1.0
            )
            assert soup.n_triangles == 0

    @pytest.mark.parametrize("inside_mask", range(1, 15))
    def test_every_mixed_case_produces_triangles(self, inside_mask):
        """All 14 mixed sign cases yield 1 (single vertex separated) or
        2 (2-2 split) triangles."""
        values = np.array([
            2.0 if inside_mask & (1 << v) else 0.0 for v in range(4)
        ])
        soup = marching_tets(TET_NODES, TET, values, 1.0)
        n_inside = bin(inside_mask).count("1")
        expected = 2 if n_inside == 2 else 1
        assert soup.n_triangles == expected

    @pytest.mark.parametrize("inside_mask", range(1, 15))
    def test_triangle_vertices_on_isolevel(self, inside_mask):
        """Every output vertex interpolates to exactly the isovalue."""
        values = np.array([
            3.0 if inside_mask & (1 << v) else -1.0 for v in range(4)
        ])
        iso = 1.0
        soup = marching_tets(TET_NODES, TET, values, iso)
        # Value varies linearly inside the tet: reconstruct from
        # barycentric coordinates of each output vertex.
        for triangle in soup.vertices:
            for point in triangle:
                bary = np.linalg.lstsq(
                    np.vstack([TET_NODES.T, np.ones(4)]),
                    np.append(point, 1.0),
                    rcond=None,
                )[0]
                assert np.dot(bary, values) == pytest.approx(iso)

    def test_values_equal_isovalue_for_plain_isosurface(self):
        values = np.array([0.0, 2.0, 0.0, 0.0])
        soup = marching_tets(TET_NODES, TET, values, 1.0)
        assert np.allclose(soup.values, 1.0)

    def test_carry_values_interpolated(self):
        level = np.array([0.0, 2.0, 0.0, 0.0])
        carry = np.array([10.0, 30.0, 10.0, 10.0])
        soup = marching_tets(
            TET_NODES, TET, level, 1.0, carry_values=carry
        )
        # Midpoint cuts (t = 0.5) carry the midpoint carry value.
        assert np.allclose(soup.values, 20.0)

    def test_complementary_masks_same_geometry(self):
        a = marching_tets(
            TET_NODES, TET, np.array([2.0, 0, 0, 0]), 1.0
        )
        b = marching_tets(
            TET_NODES, TET, np.array([0.0, 2, 2, 2]), 1.0
        )
        assert a.n_triangles == b.n_triangles == 1
        va = {tuple(np.round(p, 12)) for p in a.vertices.reshape(-1, 3)}
        vb = {tuple(np.round(p, 12)) for p in b.vertices.reshape(-1, 3)}
        assert va == vb


class TestValidation:
    def test_level_length_mismatch(self):
        with pytest.raises(ValueError):
            marching_tets(TET_NODES, TET, np.zeros(3), 0.5)

    def test_carry_length_mismatch(self):
        with pytest.raises(ValueError):
            marching_tets(TET_NODES, TET, np.zeros(4), 0.5,
                          carry_values=np.zeros(3))


class TestTriangleSoup:
    def test_empty(self):
        soup = TriangleSoup.empty()
        assert soup.n_triangles == 0

    def test_concatenate(self):
        a = TriangleSoup(np.zeros((2, 3, 3)), np.zeros((2, 3)))
        b = TriangleSoup(np.ones((3, 3, 3)), np.ones((3, 3)))
        merged = TriangleSoup.concatenate([a, TriangleSoup.empty(), b])
        assert merged.n_triangles == 5

    def test_concatenate_empty_list(self):
        assert TriangleSoup.concatenate([]).n_triangles == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TriangleSoup(np.zeros((2, 3, 3)), np.zeros((3, 3)))


class TestMeshLevelSurfaces:
    def test_plane_surface_area(self):
        """The z = 0.5 level set of f(x) = z over the unit cube is the
        unit square: total triangle area must be ~1."""
        mesh = structured_tet_block(4, 4, 4)
        soup = marching_tets(
            mesh.nodes, mesh.tets, mesh.nodes[:, 2], 0.5
        )
        assert soup.n_triangles > 0
        area = triangle_areas(soup.vertices).sum()
        assert area == pytest.approx(1.0, rel=1e-9)

    def test_sphere_surface_area_approx(self):
        """The r = 0.35 level set of radial distance from the cube
        center approximates a sphere: area within ~10 % of 4 pi r^2."""
        mesh = structured_tet_block(10, 10, 10)
        radius = np.linalg.norm(mesh.nodes - 0.5, axis=1)
        soup = marching_tets(mesh.nodes, mesh.tets, radius, 0.35)
        area = triangle_areas(soup.vertices).sum()
        exact = 4 * np.pi * 0.35 ** 2
        assert abs(area - exact) / exact < 0.1

    def test_surface_scales_with_isovalue(self):
        mesh = structured_tet_block(8, 8, 8)
        radius = np.linalg.norm(mesh.nodes - 0.5, axis=1)
        small = marching_tets(mesh.nodes, mesh.tets, radius, 0.2)
        large = marching_tets(mesh.nodes, mesh.tets, radius, 0.4)
        assert triangle_areas(large.vertices).sum() > \
            triangle_areas(small.vertices).sum()

    def test_vertices_inside_domain(self):
        mesh = structured_tet_block(4, 4, 4)
        values = np.sin(mesh.nodes @ np.array([3.0, 5.0, 7.0]))
        soup = marching_tets(mesh.nodes, mesh.tets, values, 0.1)
        flat = soup.vertices.reshape(-1, 3)
        assert flat.min() >= -1e-12
        assert flat.max() <= 1 + 1e-12
