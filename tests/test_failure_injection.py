"""Failure injection: corrupted files, vanished files, flaky reads.

A production data-management library must fail loudly and cleanly —
"errors should never pass silently". These tests damage real datasets and
verify the error surfaces, the cleanup, and the recovery paths.
"""

import os
import shutil

import pytest

from repro.errors import ReadFunctionError, StorageFormatError
from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.viz.voyager import Voyager, VoyagerConfig


@pytest.fixture
def fragile_dataset(tmp_path):
    """A private dataset copy this test file may damage at will."""
    directory = str(tmp_path / "fragile")
    return generate_dataset(
        SnapshotSpec(config=TitanConfig.scaled(0.12), n_steps=3,
                     files_per_snapshot=2),
        directory,
    )


def damage(path: str, mode: str) -> None:
    if mode == "truncate":
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
    elif mode == "garbage-header":
        blob = bytearray(open(path, "rb").read())
        blob[:4] = b"XXXX"
        open(path, "wb").write(bytes(blob))
    elif mode == "delete":
        os.remove(path)
    else:
        raise AssertionError(mode)


class TestVoyagerUnderDamage:
    @pytest.mark.parametrize("mode", ["truncate", "garbage-header",
                                      "delete"])
    def test_godiva_build_raises_read_function_error(
        self, fragile_dataset, mode
    ):
        damage(fragile_dataset.snapshot_paths(1)[0], mode)
        voyager = Voyager(VoyagerConfig(
            data_dir=fragile_dataset.directory, test="simple",
            mode="G", mem_mb=32, render=False,
        ))
        with pytest.raises(ReadFunctionError):
            voyager.run()

    def test_undamaged_snapshots_processed_first(self, fragile_dataset):
        """Damage in snapshot 2 only surfaces when snapshot 2 is
        reached; earlier work completes."""
        damage(fragile_dataset.snapshot_paths(2)[0], "truncate")
        voyager = Voyager(VoyagerConfig(
            data_dir=fragile_dataset.directory, test="simple",
            mode="G", mem_mb=32, render=False,
        ))
        with pytest.raises(ReadFunctionError):
            voyager.run()
        # The pipeline got through snapshots 0 and 1.
        assert voyager.io_stats.snapshot()["bytes_read"] > 0

    def test_original_build_raises_storage_error(self, fragile_dataset):
        damage(fragile_dataset.snapshot_paths(0)[0], "garbage-header")
        voyager = Voyager(VoyagerConfig(
            data_dir=fragile_dataset.directory, test="simple",
            mode="O", mem_mb=32, render=False,
        ))
        with pytest.raises(StorageFormatError):
            voyager.run()

    def test_tg_failure_propagates_to_waiter(self, fragile_dataset):
        """A prefetch failure on the I/O thread surfaces in the main
        thread's wait, not as a silent hang."""
        damage(fragile_dataset.snapshot_paths(1)[1], "truncate")
        voyager = Voyager(VoyagerConfig(
            data_dir=fragile_dataset.directory, test="simple",
            mode="TG", mem_mb=32, render=False,
        ))
        with pytest.raises(ReadFunctionError):
            voyager.run()


class TestRecoveryPaths:
    def test_gbo_survives_failed_unit_and_continues(
        self, fragile_dataset
    ):
        """After a failed snapshot the same GBO keeps serving others —
        no poisoned state, no leaked memory."""
        from repro.core.database import GBO
        from repro.io.readers import (
            make_snapshot_read_fn,
            snapshot_unit_name,
        )

        damage(fragile_dataset.snapshot_paths(1)[0], "truncate")
        read_fn = make_snapshot_read_fn(fragile_dataset)
        with GBO(mem_mb=32, background_io=False) as gbo:
            gbo.add_unit(snapshot_unit_name(0), read_fn)
            gbo.add_unit(snapshot_unit_name(1), read_fn)
            gbo.add_unit(snapshot_unit_name(2), read_fn)
            gbo.wait_unit(snapshot_unit_name(0))
            with pytest.raises(ReadFunctionError):
                gbo.wait_unit(snapshot_unit_name(1))
            used_after_failure = gbo.mem_used_bytes
            gbo.wait_unit(snapshot_unit_name(2))
            assert gbo.is_resident(snapshot_unit_name(2))
            assert gbo.mem_used_bytes > used_after_failure

    def test_repaired_file_allows_retry(self, tmp_path):
        """Fix the file, re-add the unit, and the data loads."""
        from repro.core.database import GBO
        from repro.io.readers import (
            make_snapshot_read_fn,
            snapshot_unit_name,
        )

        directory = str(tmp_path / "repairable")
        manifest = generate_dataset(
            SnapshotSpec(config=TitanConfig.scaled(0.12), n_steps=1,
                         files_per_snapshot=1),
            directory,
        )
        path = manifest.snapshot_paths(0)[0]
        backup = path + ".bak"
        shutil.copy(path, backup)
        damage(path, "truncate")

        read_fn = make_snapshot_read_fn(manifest)
        with GBO(mem_mb=32, background_io=False) as gbo:
            gbo.add_unit(snapshot_unit_name(0), read_fn)
            with pytest.raises(ReadFunctionError):
                gbo.wait_unit(snapshot_unit_name(0))
            shutil.move(backup, path)       # repair
            gbo.add_unit(snapshot_unit_name(0), read_fn)  # re-add
            gbo.wait_unit(snapshot_unit_name(0))
            assert gbo.record_count("solid") == manifest.n_blocks
