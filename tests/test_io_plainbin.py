"""Plain-binary format and its sequential access advantage."""

import numpy as np
import pytest

from repro.errors import StorageFormatError
from repro.io.disk import ENGLE_DISK, IoStats
from repro.io.plainbin import read_plain_array, write_plain_array
from repro.io.sdf import SdfReader, SdfWriter


def test_roundtrip_1d(tmp_path):
    path = str(tmp_path / "a.pbin")
    data = np.linspace(0, 1, 100)
    nbytes = write_plain_array(path, data)
    assert nbytes == 48 + 800
    assert np.array_equal(read_plain_array(path), data)


def test_roundtrip_shapes_and_dtypes(tmp_path):
    for i, (shape, dtype) in enumerate([
        ((), "<f8"),
        ((5,), "<i4"),
        ((3, 4), "<f4"),
        ((2, 3, 4), "<i8"),
        ((2, 2, 2, 2), "u1"),
    ]):
        path = str(tmp_path / f"arr{i}.pbin")
        data = np.zeros(shape, dtype=dtype)
        write_plain_array(path, data)
        back = read_plain_array(path)
        assert back.shape == data.shape
        assert back.dtype == data.dtype


def test_rank5_rejected(tmp_path):
    with pytest.raises(StorageFormatError):
        write_plain_array(str(tmp_path / "x.pbin"),
                          np.zeros((1, 1, 1, 1, 1)))


def test_bad_magic(tmp_path):
    path = tmp_path / "bad.pbin"
    path.write_bytes(b"XXXX" + b"\x00" * 60)
    with pytest.raises(StorageFormatError, match="magic"):
        read_plain_array(str(path))


def test_truncated_data(tmp_path):
    path = str(tmp_path / "a.pbin")
    write_plain_array(path, np.zeros(100))
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:-10])
    with pytest.raises(StorageFormatError, match="truncated"):
        read_plain_array(path)


def test_plain_binary_cheaper_than_sdf_for_same_array(tmp_path):
    """The paper's observation (section 1): scientific-format files have
    a higher input cost than plain binary files — here because of the
    directory seeks the SDF layout requires."""
    data = np.random.default_rng(0).random(50_000)

    pbin = str(tmp_path / "x.pbin")
    write_plain_array(pbin, data)
    pbin_stats = IoStats()
    read_plain_array(pbin, stats=pbin_stats, profile=ENGLE_DISK)

    sdf = str(tmp_path / "x.sdf")
    with SdfWriter(sdf) as writer:
        writer.add_dataset("x", data)
    sdf_stats = IoStats()
    with SdfReader(sdf, stats=sdf_stats, profile=ENGLE_DISK) as reader:
        reader.read("x")

    assert sdf_stats.snapshot()["virtual_seconds"] > \
        pbin_stats.snapshot()["virtual_seconds"]
    assert sdf_stats.snapshot()["read_calls"] > \
        pbin_stats.snapshot()["read_calls"]


def test_read_plain_header(tmp_path):
    from repro.io.plainbin import read_plain_header

    path = str(tmp_path / "h.pbin")
    write_plain_array(path, np.zeros((3, 5), dtype="<i4"))
    dtype, shape = read_plain_header(path)
    assert dtype == np.dtype("<i4")
    assert shape == (3, 5)


def test_map_plain_array_zero_copy(tmp_path):
    from repro.io.plainbin import map_plain_array

    path = str(tmp_path / "m.pbin")
    data = np.arange(24, dtype="<f8").reshape(4, 6)
    write_plain_array(path, data)
    mapped = map_plain_array(path)
    assert isinstance(mapped, np.memmap)
    assert mapped.shape == (4, 6)
    assert np.array_equal(mapped, data)
    # Read-only mapping: writes must fail.
    with pytest.raises(ValueError):
        mapped[0, 0] = 1.0


def test_map_plain_array_scalar(tmp_path):
    from repro.io.plainbin import map_plain_array

    path = str(tmp_path / "s.pbin")
    write_plain_array(path, np.float64(7.25))
    assert map_plain_array(path)[()] == 7.25
