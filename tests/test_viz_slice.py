"""Cutting planes through tet meshes."""

import numpy as np
import pytest

from repro.gen.tetmesh import structured_tet_block
from repro.viz.geometry import triangle_areas
from repro.viz.slice_plane import plane_signed_distance, slice_mesh


def test_signed_distance_simple_plane():
    nodes = np.array([[0, 0, 0], [0, 0, 2], [0, 0, -3]], dtype=float)
    d = plane_signed_distance(nodes, origin=(0, 0, 1),
                              normal=(0, 0, 1))
    assert np.allclose(d, [-1, 1, -4])


def test_signed_distance_normalizes_normal():
    nodes = np.array([[0, 0, 2]], dtype=float)
    d = plane_signed_distance(nodes, (0, 0, 0), (0, 0, 10))
    assert d[0] == pytest.approx(2.0)


def test_zero_normal_rejected():
    with pytest.raises(ValueError):
        plane_signed_distance(np.zeros((1, 3)), (0, 0, 0), (0, 0, 0))


def test_slice_through_cube_has_unit_area():
    mesh = structured_tet_block(4, 4, 4)
    field = np.zeros(mesh.n_nodes)
    soup = slice_mesh(mesh.nodes, mesh.tets, field,
                      origin=(0.5, 0.5, 0.5), normal=(0, 0, 1))
    assert triangle_areas(soup.vertices).sum() == pytest.approx(1.0)


def test_diagonal_slice_area():
    """A 45-degree plane through the cube center cuts a sqrt(2) x 1
    rectangle."""
    mesh = structured_tet_block(6, 6, 6)
    field = np.zeros(mesh.n_nodes)
    soup = slice_mesh(mesh.nodes, mesh.tets, field,
                      origin=(0.5, 0.5, 0.5), normal=(1, 0, 1))
    area = triangle_areas(soup.vertices).sum()
    assert area == pytest.approx(np.sqrt(2), rel=1e-6)


def test_slice_outside_domain_empty():
    mesh = structured_tet_block(2, 2, 2)
    field = np.zeros(mesh.n_nodes)
    soup = slice_mesh(mesh.nodes, mesh.tets, field,
                      origin=(0, 0, 5.0), normal=(0, 0, 1))
    assert soup.n_triangles == 0


def test_slice_carries_the_field():
    """The painted values are the field's values on the cut plane."""
    mesh = structured_tet_block(4, 4, 4)
    field = mesh.nodes[:, 0] * 10.0   # linear in x
    soup = slice_mesh(mesh.nodes, mesh.tets, field,
                      origin=(0.5, 0.5, 0.5), normal=(0, 0, 1))
    # On z = 0.5 the x coordinate of each vertex determines the value.
    flat_x = soup.vertices.reshape(-1, 3)[:, 0]
    assert np.allclose(soup.values.ravel(), flat_x * 10.0)


def test_slice_plane_lies_at_origin_offset():
    mesh = structured_tet_block(3, 3, 3)
    field = np.zeros(mesh.n_nodes)
    soup = slice_mesh(mesh.nodes, mesh.tets, field,
                      origin=(0.5, 0.5, 0.25), normal=(0, 0, 1))
    z = soup.vertices.reshape(-1, 3)[:, 2]
    assert np.allclose(z, 0.25)
