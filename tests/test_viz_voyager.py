"""Voyager integration: the three builds over a real dataset."""

import numpy as np
import pytest

from repro.viz.voyager import Voyager, VoyagerConfig


def run(dataset, mode, test="simple", **kwargs):
    config = VoyagerConfig(
        data_dir=dataset.directory,
        test=test,
        mode=mode,
        mem_mb=64.0,
        render=kwargs.pop("render", False),
        **kwargs,
    )
    return Voyager(config).run()


class TestModes:
    def test_invalid_mode_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            VoyagerConfig(data_dir=small_dataset.directory, mode="X")

    @pytest.mark.parametrize("mode", ["O", "G", "TG"])
    def test_runs_all_snapshots(self, small_dataset, mode):
        result = run(small_dataset, mode)
        assert result.n_snapshots == 4
        assert result.triangles > 0
        assert result.bytes_read > 0
        assert result.total_wall_s > 0

    def test_steps_limit(self, small_dataset):
        result = run(small_dataset, "G", steps=2)
        assert result.n_snapshots == 2

    def test_snapshot_indices(self, small_dataset):
        result = run(small_dataset, "G", snapshot_indices=[1, 3])
        assert result.n_snapshots == 2

    def test_bad_snapshot_indices(self, small_dataset):
        with pytest.raises(ValueError, match="out of range"):
            run(small_dataset, "G", snapshot_indices=[99])


class TestEquivalence:
    @pytest.mark.parametrize("test", ["simple", "complex"])
    def test_all_builds_produce_identical_images(
        self, small_dataset, tmp_path, test
    ):
        """O, G and TG must compute exactly the same pictures — GODIVA
        changes data management, never results."""
        images = {}
        for mode in ("O", "G", "TG"):
            out = str(tmp_path / mode)
            result = run(small_dataset, mode, test=test, steps=2,
                         render=True, out_dir=out)
            from repro.viz.image import read_ppm

            images[mode] = [read_ppm(p) for p in result.images]
        for mode in ("G", "TG"):
            for a, b in zip(images["O"], images[mode]):
                assert np.array_equal(a, b)

    def test_same_triangles_all_modes(self, small_dataset):
        counts = {
            mode: run(small_dataset, mode, test="medium").triangles
            for mode in ("O", "G", "TG")
        }
        assert counts["O"] == counts["G"] == counts["TG"]


class TestPaperMetrics:
    @pytest.mark.parametrize("test", ["simple", "medium", "complex"])
    def test_godiva_reduces_io_volume(self, small_dataset, test):
        """N1: G reads strictly less than O in every test (redundant
        coordinate re-reads eliminated)."""
        o = run(small_dataset, "O", test=test)
        g = run(small_dataset, "G", test=test)
        assert g.bytes_read < o.bytes_read
        assert g.read_calls < o.read_calls

    def test_medium_has_largest_reduction(self, small_dataset):
        reductions = {}
        for test in ("simple", "medium", "complex"):
            o = run(small_dataset, "O", test=test)
            g = run(small_dataset, "G", test=test)
            reductions[test] = 1 - g.bytes_read / o.bytes_read
        assert reductions["medium"] > reductions["simple"]
        assert reductions["medium"] > reductions["complex"]

    def test_g_and_tg_read_identical_volume(self, small_dataset):
        g = run(small_dataset, "G", test="simple")
        tg = run(small_dataset, "TG", test="simple")
        assert g.bytes_read == tg.bytes_read

    def test_virtual_io_time_reduced(self, small_dataset):
        o = run(small_dataset, "O", test="medium")
        g = run(small_dataset, "G", test="medium")
        assert g.virtual_io_s < o.virtual_io_s

    def test_tg_uses_background_thread(self, small_dataset):
        result = run(small_dataset, "TG")
        assert result.gbo_stats["units_prefetched"] == 4
        assert result.gbo_stats["units_read_foreground"] == 0

    def test_g_reads_in_foreground(self, small_dataset):
        result = run(small_dataset, "G")
        assert result.gbo_stats["units_read_foreground"] == 4
        assert result.gbo_stats["units_prefetched"] == 0


class TestCli:
    def test_main(self, small_dataset, capsys):
        from repro.viz.voyager import main

        code = main([
            "--data", small_dataset.directory,
            "--test", "simple", "--mode", "G",
            "--steps", "1", "--no-render",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "visible I/O wall" in out
        assert "bytes read" in out

    def test_main_with_workers(self, small_dataset, capsys):
        from repro.viz.voyager import main

        code = main([
            "--data", small_dataset.directory,
            "--test", "simple", "--mode", "G",
            "--no-render", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert "makespan" in out
