"""End-to-end integration: generate -> store -> manage -> visualize.

One test walks the entire stack the way a downstream user would; the
others cross-check subsystem boundaries the unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core.database import GBO
from repro.gen.snapshot import (
    SnapshotSpec,
    block_key,
    generate_dataset,
)
from repro.gen.titan import TitanConfig
from repro.io.disk import ENGLE_DISK, IoStats
from repro.io.readers import (
    load_snapshot_records,
    make_snapshot_read_fn,
    snapshot_unit_name,
)
from repro.viz.camera import Camera
from repro.viz.gops import GraphicsOp, GraphicsOps
from repro.viz.pipeline import Pipeline
from repro.viz.voyager import GodivaSnapshotData, Voyager, VoyagerConfig


def test_full_stack_walkthrough(tmp_path):
    """generate -> add_unit/wait_unit -> query -> extract -> render."""
    data_dir = str(tmp_path / "ds")
    manifest = generate_dataset(
        SnapshotSpec(config=TitanConfig.scaled(0.15), n_steps=3,
                     files_per_snapshot=2),
        data_dir,
    )
    stats = IoStats()
    read_fn = make_snapshot_read_fn(
        manifest, stats=stats, profile=ENGLE_DISK
    )
    gops = GraphicsOps([
        GraphicsOp("isosurface", "temperature", isovalue=500.0,
                   colormap="heat", vmin=300.0, vmax=2500.0),
        GraphicsOp("slice", "velocity", component="magnitude",
                   origin=(0, 0, 5.0), normal=(0, 0, 1)),
    ])
    pipeline = Pipeline(
        gops, camera=Camera.fit_bounds((-1.7, -1.7, 0), (1.7, 1.7, 10))
    )

    images = []
    with GBO(mem_mb=64) as gbo:
        for step in range(3):
            gbo.add_unit(snapshot_unit_name(step), read_fn)
        for step in range(3):
            unit = snapshot_unit_name(step)
            gbo.wait_unit(unit)
            data = GodivaSnapshotData(
                gbo, manifest.snapshots[step].tsid,
                manifest.block_ids,
            )
            result = pipeline.process(data)
            images.append(result.image)
            assert result.triangles > 0
            gbo.delete_unit(unit)
        assert gbo.stats.units_prefetched == 3
    assert stats.snapshot()["bytes_read"] > 0
    # Time-varying fields -> frames differ.
    assert not np.array_equal(images[0], images[2])


def test_query_buffers_match_file_contents(small_dataset, gbo_single):
    """What GODIVA hands out is byte-identical to what is on disk."""
    from repro.io.sdf import SdfReader

    load_snapshot_records(gbo_single, small_dataset, step=0)
    tsid = small_dataset.snapshots[0].tsid
    path = small_dataset.snapshot_paths(0)[0]
    with SdfReader(path) as reader:
        block = reader.file_attributes()["block_ids"].split(",")[0]
        keys = [block_key(block).encode(), tsid.encode()]
        for field, reshape in (
            ("coords", (-1, 3)), ("conn", (-1, 4)),
            ("velocity", (-1, 3)), ("temperature", (-1,)),
        ):
            from_file = reader.read(f"{field}:{block}")
            from_gbo = gbo_single.get_field_buffer(
                "solid", field, keys
            ).reshape(reshape)
            assert np.array_equal(
                from_file.reshape(reshape), from_gbo
            )


def test_voyager_restart_same_results(small_dataset):
    """Two independent runs over the same dataset are bit-identical in
    geometry and I/O accounting (full determinism)."""
    def run():
        return Voyager(VoyagerConfig(
            data_dir=small_dataset.directory, test="complex",
            mode="G", mem_mb=64, render=False,
        )).run()

    a, b = run(), run()
    assert a.triangles == b.triangles
    assert a.bytes_read == b.bytes_read
    assert a.seeks == b.seeks
    assert a.virtual_io_s == b.virtual_io_s


def test_trace_then_simulate_consistency(small_dataset):
    """The simulator's G-mode visible I/O equals the traced disk+parse
    arithmetic — the two layers agree on the contract."""
    from repro.simulate.machine import ENGLE
    from repro.simulate.runner import simulate_voyager
    from repro.simulate.workload import trace_workload

    workload = trace_workload(
        small_dataset.directory, "simple", n_snapshots=4
    )
    run = simulate_voyager(ENGLE, workload, "G")
    expected = 4 * (
        workload.godiva.disk_seconds(ENGLE.disk)
        + workload.godiva.parse_seconds(ENGLE)
    )
    assert run.visible_io_s == pytest.approx(expected)


def test_public_api_surface():
    """Everything README promises is importable from the top level."""
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__
