"""Camera projection and camera-position files."""

import numpy as np
import pytest

from repro.viz.camera import Camera


def test_basis_orthonormal():
    camera = Camera(position=(5, 2, 3), look_at=(0, 0, 0))
    right, up, forward = camera.basis()
    for vec in (right, up, forward):
        assert np.linalg.norm(vec) == pytest.approx(1.0)
    assert abs(right @ up) < 1e-12
    assert abs(right @ forward) < 1e-12
    assert abs(up @ forward) < 1e-12


def test_basis_view_convention():
    """OpenGL-style view basis: (right, up, -forward) is right-handed,
    i.e. right x up points back toward the camera."""
    camera = Camera(position=(5, 0, 0), look_at=(0, 0, 0))
    right, up, forward = camera.basis()
    assert np.allclose(np.cross(right, up), -forward)


def test_basis_up_stays_up():
    camera = Camera(position=(5, 0, 0), look_at=(0, 0, 0),
                    up=(0, 0, 1))
    _right, up, _forward = camera.basis()
    assert up[2] > 0.99


def test_degenerate_position_rejected():
    with pytest.raises(ValueError):
        Camera(position=(1, 1, 1), look_at=(1, 1, 1)).basis()


def test_up_parallel_to_view_recovers():
    camera = Camera(position=(0, 0, 5), look_at=(0, 0, 0),
                    up=(0, 0, 1))
    right, up, forward = camera.basis()
    assert np.linalg.norm(right) == pytest.approx(1.0)


def test_lookat_point_projects_to_center():
    camera = Camera(position=(0, -5, 0), look_at=(0, 0, 0),
                    width=320, height=240)
    xy, depth = camera.project(np.array([[0.0, 0.0, 0.0]]))
    assert xy[0, 0] == pytest.approx(160.0)
    assert xy[0, 1] == pytest.approx(120.0)
    assert depth[0] == pytest.approx(5.0)


def test_point_right_of_view_projects_right():
    camera = Camera(position=(0, -5, 0), look_at=(0, 0, 0),
                    up=(0, 0, 1))
    xy, _ = camera.project(np.array([[1.0, 0.0, 0.0]]))
    assert xy[0, 0] > camera.width / 2


def test_point_above_projects_up():
    camera = Camera(position=(0, -5, 0), look_at=(0, 0, 0),
                    up=(0, 0, 1))
    xy, _ = camera.project(np.array([[0.0, 0.0, 1.0]]))
    assert xy[0, 1] < camera.height / 2   # y is down in image space


def test_nearer_objects_appear_larger():
    camera = Camera(position=(0, -10, 0), look_at=(0, 0, 0),
                    up=(0, 0, 1))
    near, _ = camera.project(np.array([[1.0, -5.0, 0.0]]))
    far, _ = camera.project(np.array([[1.0, 5.0, 0.0]]))
    near_offset = near[0, 0] - camera.width / 2
    far_offset = far[0, 0] - camera.width / 2
    assert near_offset > far_offset > 0


def test_behind_camera_flagged_by_depth():
    camera = Camera(position=(0, -5, 0), look_at=(0, 0, 0))
    _, depth = camera.project(np.array([[0.0, -10.0, 0.0]]))
    assert depth[0] < 0


def test_save_load_roundtrip(tmp_path):
    camera = Camera(position=(1, 2, 3), look_at=(4, 5, 6),
                    up=(0, 1, 0), fov_deg=55.0, width=640, height=480)
    path = str(tmp_path / "camera.json")
    camera.save(path)
    loaded = Camera.load(path)
    assert loaded.position == (1, 2, 3)
    assert loaded.look_at == (4, 5, 6)
    assert loaded.fov_deg == 55.0
    assert loaded.width == 640


def test_save_load_preserves_near_plane(tmp_path):
    # Regression: save() used to omit `near`, so a custom near plane
    # silently reverted to the default on reload.
    camera = Camera(near=0.25)
    path = str(tmp_path / "camera.json")
    camera.save(path)
    assert Camera.load(path).near == 0.25


def test_load_legacy_file_without_near_key(tmp_path):
    # Camera files written before `near` was persisted must still load,
    # falling back to the dataclass default.
    import json
    camera = Camera()
    path = str(tmp_path / "camera.json")
    camera.save(path)
    with open(path) as f:
        data = json.load(f)
    del data["near"]
    with open(path, "w") as f:
        json.dump(data, f)
    assert Camera.load(path).near == 0.01


def test_fit_bounds_sees_the_box():
    camera = Camera.fit_bounds((-1, -1, 0), (1, 1, 10))
    corners = np.array([
        [x, y, z] for x in (-1, 1) for y in (-1, 1) for z in (0, 10)
    ], dtype=float)
    xy, depth = camera.project(corners)
    assert (depth > 0).all()
    assert (xy[:, 0] >= 0).all() and (xy[:, 0] <= camera.width).all()
    assert (xy[:, 1] >= 0).all() and (xy[:, 1] <= camera.height).all()


def test_fit_bounds_fov_param_sets_camera_fov():
    # Regression: fit_bounds hardcoded a 40-degree FOV in the framing
    # math while the returned Camera used the dataclass default — the
    # explicit parameter keeps distance and stored FOV in lockstep.
    camera = Camera.fit_bounds((-1, -1, 0), (1, 1, 10), fov_deg=60.0)
    assert camera.fov_deg == 60.0
    corners = np.array([
        [x, y, z] for x in (-1, 1) for y in (-1, 1) for z in (0, 10)
    ], dtype=float)
    xy, depth = camera.project(corners)
    assert (depth > 0).all()
    assert (xy[:, 0] >= 0).all() and (xy[:, 0] <= camera.width).all()
    assert (xy[:, 1] >= 0).all() and (xy[:, 1] <= camera.height).all()


def test_fit_bounds_narrow_fov_backs_off():
    near_cam = Camera.fit_bounds((-1, -1, -1), (1, 1, 1), fov_deg=60.0)
    far_cam = Camera.fit_bounds((-1, -1, -1), (1, 1, 1), fov_deg=20.0)
    d_near = np.linalg.norm(np.asarray(near_cam.position))
    d_far = np.linalg.norm(np.asarray(far_cam.position))
    assert d_far > d_near
