"""Concurrency stress: the GBO under multiple application threads.

The paper's model is one main thread plus the I/O thread, but a portable
library must not corrupt state when several application threads share a
GBO (e.g. a client-server front-end with worker threads). These tests
hammer the lock-protected paths from many threads at once.
"""

import threading
import time

import pytest

from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.core.units import UnitState
from repro.errors import GodivaDeadlockError

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 16, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


def reader(nbytes=400, delay=0.0):
    def read_fn(gbo, unit_name):
        if delay:
            time.sleep(delay)
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(16)[:16].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        record.field("data").as_array()[:] = 3.0
        gbo.commit_record(record)

    return read_fn


def run_threads(n, target):
    threads = [
        threading.Thread(target=target, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMultipleWaiters:
    def test_many_threads_wait_same_unit(self):
        """Every waiter must observe the unit resident; ref counts add
        up so the unit only becomes evictable after N finishes."""
        with GBO(mem_mb=8) as gbo:
            gbo.add_unit("shared", reader(delay=0.05))
            observed = []

            def waiter(index):
                gbo.wait_unit("shared")
                observed.append(
                    gbo.get_field_buffer(
                        "item", "data", [b"shared".ljust(16)]
                    )[0]
                )

            run_threads(8, waiter)
            assert observed == [3.0] * 8
            for _ in range(8):
                gbo.finish_unit("shared")
            assert "shared" in gbo._policy   # now evictable

    def test_waiters_on_distinct_units(self):
        with GBO(mem_mb=8) as gbo:
            for i in range(8):
                gbo.add_unit(f"u{i}", reader())

            def waiter(index):
                gbo.wait_unit(f"u{index}")
                gbo.finish_unit(f"u{index}")

            run_threads(8, waiter)
            assert gbo.stats.units_prefetched == 8


class TestConcurrentRecordOps:
    def test_parallel_record_creation_accounting(self):
        """Memory accounting must balance exactly under contention."""
        with GBO(mem_mb=32) as gbo:
            ITEM.ensure(gbo)
            per_thread = 25

            def creator(index):
                for j in range(per_thread):
                    record = gbo.new_record("item")
                    record.field("id").write(
                        f"t{index:02d}r{j:04d}".ljust(16).encode()
                    )
                    gbo.alloc_field_buffer(record, "data", 80)
                    gbo.commit_record(record)

            run_threads(6, creator)
            assert gbo.record_count("item") == 6 * per_thread
            expected = 6 * per_thread * (16 + 80 + 64)
            assert gbo.mem_used_bytes == expected

    def test_parallel_queries(self):
        with GBO(mem_mb=8) as gbo:
            ITEM.ensure(gbo)
            record = gbo.new_record("item")
            record.field("id").write(b"hot-record------")
            gbo.alloc_field_buffer(record, "data", 80)
            record.field("data").as_array()[:] = 9.0
            gbo.commit_record(record)
            failures = []

            def querier(index):
                for _ in range(200):
                    buf = gbo.get_field_buffer(
                        "item", "data", [b"hot-record------"]
                    )
                    if buf[0] != 9.0:
                        failures.append(index)

            run_threads(6, querier)
            assert not failures
            assert gbo.stats.queries == 6 * 200


class TestConcurrentLifecycle:
    def test_interleaved_add_wait_delete_across_threads(self):
        with GBO(mem_mb=16) as gbo:
            n_units = 24
            for i in range(n_units):
                gbo.add_unit(f"u{i:03d}", reader(delay=0.002))

            def consumer(index):
                for i in range(index, n_units, 4):
                    name = f"u{i:03d}"
                    gbo.wait_unit(name)
                    gbo.delete_unit(name)

            run_threads(4, consumer)
            states = {s for _n, s in gbo.list_units()}
            assert states == {UnitState.DELETED}
            assert gbo.mem_used_bytes == 0

    def test_eviction_storm(self):
        """Tight budget + many threads cycling units: accounting and
        index survive; all data remains correct."""
        unit_bytes = 1000
        with GBO(mem_bytes=6 * (unit_bytes + 300)) as gbo:
            n_units = 12
            for i in range(n_units):
                gbo.add_unit(f"u{i:03d}", reader(nbytes=unit_bytes))

            def cycler(index):
                for round_number in range(3):
                    for i in range(index, n_units, 3):
                        name = f"u{i:03d}"
                        gbo.wait_unit(name)
                        value = gbo.get_field_buffer(
                            "item", "data",
                            [name.ljust(16).encode()],
                        )[0]
                        assert value == 3.0
                        gbo.finish_unit(name)

            run_threads(3, cycler)
            assert gbo.mem_used_bytes <= gbo.mem_budget_bytes


UNIT_BYTES = 1000
# Per-unit footprint: key + data buffer + record overhead (see the
# accounting test above: 16 + nbytes + 64).
UNIT_FOOTPRINT = 16 + UNIT_BYTES + 64


@pytest.mark.parametrize("io_workers", [1, 2, 4])
class TestWorkerPoolStress:
    """The tentpole under pressure: many units, a budget that holds only
    a handful, and every pool size. Whatever the worker count, no waiter
    may sleep forever and the accountant must balance.

    Well-behaved workloads bound their prefetch-ahead window below the
    budget, as the paper's viz pipeline does — with a pool, enqueueing
    the whole dataset against a tiny budget lets workers fill memory
    with units nobody has consumed yet, which is a *real* deadlock (see
    ``test_deadlock_detected_with_worker_pool`` below)."""

    def test_many_units_small_budget(self, io_workers):
        n_units = 40
        window = 4
        budget = 6 * UNIT_FOOTPRINT
        with GBO(mem_bytes=budget, io_workers=io_workers) as gbo:
            handles = {}
            added = 0
            for i in range(n_units):
                while added < min(n_units, i + window):
                    handles[added] = gbo.add_unit(
                        f"u{added:03d}",
                        reader(nbytes=UNIT_BYTES),
                        priority=float(n_units - added),
                    )
                    added += 1
                handle = handles.pop(i)
                handle.wait()
                value = gbo.get_field_buffer(
                    "item", "data", [f"u{i:03d}".ljust(16).encode()]
                )[0]
                assert value == 3.0
                handle.delete()
            assert gbo.mem_used_bytes == 0
            states = {s for _n, s in gbo.list_units()}
            assert states == {UnitState.DELETED}
            assert gbo.stats.units_deleted == n_units

    def test_no_lost_wakeups_under_eviction_churn(self, io_workers):
        """Waiters racing evictions: each wait_unit must either find the
        unit resident or trigger a re-read — never hang. A global join
        timeout converts a lost wakeup into a test failure."""
        n_units = 24
        with GBO(
            mem_bytes=n_units * UNIT_FOOTPRINT + 1024,
            io_workers=io_workers,
        ) as gbo:
            for i in range(n_units):
                gbo.add_unit(f"u{i:03d}", reader(nbytes=UNIT_BYTES))

            def churner(index):
                for i in range(index, n_units, 3):
                    name = f"u{i:03d}"
                    gbo.wait_unit(name)
                    gbo.finish_unit(name)

            run_threads(3, churner)
            # Mass eviction, then a re-wait pass: every wait must
            # trigger a reload through the queue (boosted to the front)
            # rather than hanging on an evicted unit.
            gbo.set_mem_space(mem_bytes=4 * UNIT_FOOTPRINT)
            threads = [
                threading.Thread(target=churner, args=(i,), daemon=True)
                for i in range(3)
            ]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 60.0
            for t in threads:
                t.join(timeout=max(0.0, deadline - time.monotonic()))
            stuck = [t for t in threads if t.is_alive()]
            assert not stuck, "lost wakeup: churner threads never finished"
            assert gbo.stats.units_reloaded >= n_units - 4
            assert gbo.mem_used_bytes <= gbo.mem_budget_bytes

    def test_eviction_accounting_balances(self, io_workers):
        """After heavy churn the bytes charged equal the bytes of what
        is actually resident — evictions refunded exactly once."""
        n_units = 30
        window = 4
        budget = 6 * UNIT_FOOTPRINT
        with GBO(mem_bytes=budget, io_workers=io_workers) as gbo:
            added = 0
            for i in range(n_units):
                while added < min(n_units, i + window):
                    gbo.add_unit(
                        f"u{added:03d}", reader(nbytes=UNIT_BYTES)
                    )
                    added += 1
                gbo.wait_unit(f"u{i:03d}")
                gbo.finish_unit(f"u{i:03d}")
            resident = sum(
                1 for _n, s in gbo.list_units() if s is UnitState.RESIDENT
            )
            assert gbo.mem_used_bytes == resident * UNIT_FOOTPRINT
            assert gbo.stats.evictions >= n_units - resident
            # Every eviction refunded exactly once: the running ledger
            # matches what is actually resident.
            assert (
                gbo.stats.bytes_allocated - gbo.stats.bytes_released
                == gbo.mem_used_bytes
            )

    def test_deadlock_detected_with_worker_pool(self, io_workers):
        """The generalized detector: with N workers all blocked on a
        budget full of never-finished units, waiting on a still-queued
        unit must raise rather than hang."""
        budget = 2 * UNIT_FOOTPRINT
        with GBO(mem_bytes=budget, io_workers=io_workers) as gbo:
            for i in range(io_workers + 4):
                gbo.add_unit(f"u{i}", reader(nbytes=UNIT_BYTES))
            gbo.wait_unit("u0")
            gbo.wait_unit("u1")
            # u0/u1 fill the budget and are never finished: every worker
            # ends up blocked and the tail unit can never load.
            with pytest.raises(GodivaDeadlockError,
                               match="finish_unit/delete_unit"):
                gbo.wait_unit(f"u{io_workers + 3}")
