"""Titan IV grain mesh configuration and generation."""

import math

import numpy as np
import pytest

from repro.gen.titan import (
    TitanConfig,
    mesh_summary,
    titan_block,
    titan_blocks,
)


class TestConfig:
    def test_full_scale_matches_paper(self):
        """Paper: 120 blocks, 679 008 elements. Ours: 120 blocks,
        680 400 elements (within 0.5 %)."""
        config = TitanConfig()
        assert config.n_blocks == 120
        total = config.n_blocks * config.tets_per_block
        assert abs(total - 679_008) / 679_008 < 0.005

    def test_scaled_reduces_size(self):
        small = TitanConfig.scaled(0.2)
        assert small.n_blocks < 120
        assert small.tets_per_block < TitanConfig().tets_per_block

    def test_scaled_one_is_full(self):
        assert TitanConfig.scaled(1.0) == TitanConfig()

    def test_scaled_never_degenerate(self):
        for scale in (0.01, 0.05, 0.1, 0.3):
            config = TitanConfig.scaled(scale)
            assert config.cells_theta >= 2
            assert config.cells_z >= 2
            assert config.n_blocks >= 1

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            TitanConfig.scaled(0.0)
        with pytest.raises(ValueError):
            TitanConfig.scaled(-1.0)

    def test_star_bore_radius_oscillates(self):
        config = TitanConfig()
        theta = np.linspace(0, 2 * math.pi, 100)
        radii = config.inner_radius(theta)
        assert radii.max() > config.r_bore
        assert radii.min() < config.r_bore
        assert radii.min() > 0

    def test_mesh_summary(self):
        summary = mesh_summary(TitanConfig())
        assert summary["n_blocks"] == 120
        assert summary["total_tets"] == 680_400


class TestBlockGeneration:
    @pytest.fixture(scope="class")
    def config(self):
        return TitanConfig.scaled(0.2)

    def test_block_count(self, config):
        blocks = list(titan_blocks(config))
        assert len(blocks) == config.n_blocks
        assert blocks[0].block_id == "block_0000"

    def test_blocks_valid_and_positive_volume(self, config):
        for block in titan_blocks(config):
            block.mesh.validate()
            assert block.mesh.total_volume() > 0

    def test_block_index_bounds(self, config):
        with pytest.raises(ValueError):
            titan_block(config, -1)
        with pytest.raises(ValueError):
            titan_block(config, config.n_blocks)

    def test_nodes_inside_annulus(self, config):
        for index in (0, config.n_blocks - 1):
            block = titan_block(config, index)
            radii = np.linalg.norm(block.mesh.nodes[:, :2], axis=1)
            assert radii.max() <= config.r_outer + 1e-9
            assert radii.min() >= config.r_bore * (
                1 - config.star_depth
            ) - 1e-9

    def test_axial_extent(self, config):
        z_all = []
        for block in titan_blocks(config):
            z_all.append(block.mesh.nodes[:, 2])
        z_all = np.concatenate(z_all)
        assert z_all.min() == pytest.approx(0.0)
        assert z_all.max() == pytest.approx(config.length)

    def test_neighbouring_blocks_share_interface_nodes(self, config):
        """Adjacent circumferential blocks duplicate their interface
        nodes — the paper's boundary duplication."""
        a = titan_block(config, 0)
        b = titan_block(config, 1)
        a_set = {tuple(np.round(p, 9)) for p in a.mesh.nodes}
        b_set = {tuple(np.round(p, 9)) for p in b.mesh.nodes}
        assert a_set & b_set

    def test_total_volume_close_to_annulus(self):
        """At decent angular resolution the mesh volume approaches
        pi (R^2 - r^2) L (chordal approximation from below)."""
        config = TitanConfig.scaled(0.6)
        total = sum(
            b.mesh.total_volume() for b in titan_blocks(config)
        )
        exact = math.pi * (
            config.r_outer ** 2 - config.r_bore ** 2
        ) * config.length
        assert 0.75 * exact < total < 1.02 * exact
