"""Derived cache through the viz pipeline: identity and zero-copy.

Two contracts from the derived-data cache plane:

* **Bit-identity** — enabling the cache must not change a single byte
  of rendered output or a single triangle, across every canned op-set
  and a revisit schedule (the memoized path is an optimization, never
  an approximation).
* **Read-only views** — :class:`GodivaSnapshotData` hands out zero-copy
  ``writeable=False`` views of the GBO's buffers; in-place mutation
  raises rather than corrupting the shared buffer and the cache's
  content-token mapping.
"""

import numpy as np
import pytest

from repro.io.readers import (
    make_snapshot_read_fn,
    snapshot_unit_name,
    solid_schema,
)
from repro.core.database import GBO
from repro.viz.voyager import GodivaSnapshotData, Voyager, VoyagerConfig

ALL_FIELDS = ("coords", "conn", "ave_stress", "temperature",
              "velocity", "plastic_strain")


@pytest.fixture
def godiva_data(small_dataset):
    """A GodivaSnapshotData over snapshot 0, with a live derived cache."""
    gbo = GBO(mem_mb=64, background_io=False)
    solid_schema().ensure(gbo)
    read_fn = make_snapshot_read_fn(small_dataset, fields=ALL_FIELDS)
    gbo.add_unit(snapshot_unit_name(0), read_fn)
    gbo.wait_unit(snapshot_unit_name(0))
    data = GodivaSnapshotData(
        gbo, small_dataset.snapshots[0].tsid, small_dataset.block_ids
    )
    yield data
    gbo.close()


class TestReadOnlyViews:
    def test_coords_mutation_raises(self, godiva_data):
        block = godiva_data.block_ids()[0]
        coords = godiva_data.coords(block)
        with pytest.raises(ValueError):
            coords[0, 0] = 1e9

    def test_connectivity_mutation_raises(self, godiva_data):
        block = godiva_data.block_ids()[0]
        conn = godiva_data.connectivity(block)
        with pytest.raises(ValueError):
            conn[0, 0] = -1

    def test_field_mutation_raises(self, godiva_data):
        block = godiva_data.block_ids()[0]
        field = godiva_data.field(block, "temperature")
        with pytest.raises(ValueError):
            field[0] = 0.0
        vec = godiva_data.field(block, "velocity")
        with pytest.raises(ValueError):
            vec[:] = 0.0

    def test_views_are_zero_copy(self, godiva_data):
        """Two reads of the same buffer share memory — views over the
        engine's storage, not per-call copies."""
        block = godiva_data.block_ids()[0]
        first = godiva_data.coords(block)
        second = godiva_data.coords(block)
        assert np.shares_memory(first, second)
        # The read-only flag is per-view: the engine's own buffer stays
        # writable for record updates.
        raw = godiva_data._gbo.get_field_buffer(
            "solid", "coords", godiva_data._keys(block)
        )
        assert raw.flags.writeable

    def test_derived_tokens_stable_and_distinct(self, godiva_data):
        block = godiva_data.block_ids()[0]
        tok = godiva_data.derived_token(block, "coords")
        assert tok is not None
        assert godiva_data.derived_token(block, "coords") == tok
        assert godiva_data.derived_token(block, "conn") != tok


class TestCacheDisabled:
    def test_hooks_degrade_to_none(self, small_dataset):
        gbo = GBO(mem_mb=64, background_io=False, derived_cache=False)
        try:
            solid_schema().ensure(gbo)
            read_fn = make_snapshot_read_fn(
                small_dataset, fields=ALL_FIELDS
            )
            gbo.add_unit(snapshot_unit_name(0), read_fn)
            gbo.wait_unit(snapshot_unit_name(0))
            data = GodivaSnapshotData(
                gbo, small_dataset.snapshots[0].tsid,
                small_dataset.block_ids,
            )
            assert data.derived_cache() is None
            assert data.derived_token(
                data.block_ids()[0], "coords"
            ) is None
        finally:
            gbo.close()


def _run(dataset, out_dir, *, test, derived_cache, mem_mb=64.0,
         snapshot_indices=None):
    config = VoyagerConfig(
        data_dir=dataset.directory,
        test=test,
        mode="G",
        mem_mb=mem_mb,
        derived_cache=derived_cache,
        render=True,
        out_dir=str(out_dir),
        snapshot_indices=snapshot_indices,
    )
    return Voyager(config).run()


def _frames(result):
    payload = {}
    for path in result.images:
        with open(path, "rb") as f:
            payload[path.rsplit("/", 1)[-1]] = f.read()
    return payload


class TestBitIdentity:
    """Property: cache-on output == cache-off output, byte for byte."""

    @pytest.mark.parametrize("test", ["simple", "medium", "complex"])
    def test_opset_identity_on_revisit(self, small_dataset, tmp_path,
                                       test):
        schedule = [0, 1, 0, 1]   # revisits exercise the memo path
        on = _run(small_dataset, tmp_path / "on", test=test,
                  derived_cache=True, snapshot_indices=schedule)
        off = _run(small_dataset, tmp_path / "off", test=test,
                   derived_cache=False, snapshot_indices=schedule)
        assert on.triangles == off.triangles
        frames_on, frames_off = _frames(on), _frames(off)
        assert frames_on.keys() == frames_off.keys() and frames_on
        for name in frames_on:
            assert frames_on[name] == frames_off[name], (
                f"{test}: frame {name} differs with the cache enabled"
            )
        assert off.gbo_stats["derived_hits"] == 0
        assert on.gbo_stats["derived_hits"] > 0

    def test_identity_under_squeezed_budget(self, small_dataset,
                                            tmp_path):
        """Evictions mid-run must not change the output either."""
        schedule = [0, 1, 0, 1]
        on = _run(small_dataset, tmp_path / "on", test="simple",
                  derived_cache=True, snapshot_indices=schedule)
        squeezed = _run(small_dataset, tmp_path / "sq", test="simple",
                        derived_cache=True, mem_mb=2.0,
                        snapshot_indices=schedule)
        assert squeezed.triangles == on.triangles
        frames_on, frames_sq = _frames(on), _frames(squeezed)
        assert frames_on.keys() == frames_sq.keys()
        for name in frames_on:
            assert frames_on[name] == frames_sq[name]
