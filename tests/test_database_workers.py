"""The I/O worker pool: priorities, boosts, cancellation, handles,
per-worker accounting, and the mem= budget spellings."""

import threading
import time

import pytest

from repro.core.database import GBO
from repro.core.memory import MB, parse_mem
from repro.core.schema import RecordSchema, SchemaField
from repro.core.trace import UnitTracer
from repro.core.types import DataType
from repro.core.units import UnitHandle, UnitState
from repro.errors import UnknownUnitError

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 8, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


def reader(nbytes=800, delay=0.0, log=None, gate=None):
    def read_fn(gbo, unit_name):
        if gate is not None:
            gate.wait(timeout=5.0)
        if delay:
            time.sleep(delay)
        if log is not None:
            log.append(unit_name)
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(8)[:8].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        record.field("data").as_array()[:] = 2.5
        gbo.commit_record(record)

    return read_fn


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def add_gate_unit(gbo, gate, log=None):
    """Occupy the (single) worker with a gated read so later add_unit
    calls stack up in the queue and their priorities decide the order."""
    gbo.add_unit("gate", reader(gate=gate, log=log))
    assert wait_for(
        lambda: gbo.unit_state("gate") is UnitState.READING
    )


class TestMemSpellings:
    def test_parse_mem(self):
        assert parse_mem("384MB") == 384 * MB
        assert parse_mem("1.5GB") == int(1.5 * 1024 * MB)
        assert parse_mem("4096 KB") == 4096 * 1024
        assert parse_mem("512B") == 512
        assert parse_mem("1048576") == MB
        assert parse_mem(2 * MB) == 2 * MB          # int = bytes
        assert parse_mem(2.0) == 2 * MB             # float = MB
        with pytest.raises(ValueError):
            parse_mem("lots")
        with pytest.raises(TypeError):
            parse_mem(True)
        with pytest.raises(TypeError):
            parse_mem(None)

    def test_constructor_spellings_agree(self):
        for kwargs in (
            {"mem": "8MB"}, {"mem": 8 * MB}, {"mem": 8.0},
            {"mem_mb": 8}, {"mem_bytes": 8 * MB},
        ):
            with GBO(**kwargs) as gbo:
                assert gbo.mem_budget_bytes == 8 * MB, kwargs

    def test_exactly_one_spelling_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            GBO()
        with pytest.raises(ValueError, match="exactly one"):
            GBO(mem="8MB", mem_mb=8)
        with pytest.raises(ValueError, match="exactly one"):
            GBO(mem_mb=8, mem_bytes=8 * MB)

    def test_set_mem_space_spellings(self):
        with GBO(mem="8MB") as gbo:
            gbo.set_mem_space(16)               # positional = MB (paper)
            assert gbo.mem_budget_bytes == 16 * MB
            gbo.set_mem_space(mem="4MB")
            assert gbo.mem_budget_bytes == 4 * MB
            gbo.set_mem_space(mem_bytes=MB)
            assert gbo.mem_budget_bytes == MB
            with pytest.raises(ValueError, match="exactly one"):
                gbo.set_mem_space(8, mem="8MB")


class TestWorkerPool:
    def test_io_workers_property(self):
        with GBO(mem="8MB", io_workers=3) as gbo:
            assert gbo.io_workers == 3
            assert gbo.background_io
        with GBO(mem="8MB", background_io=False) as gbo:
            assert gbo.io_workers == 0
            assert not gbo.background_io

    def test_io_workers_validation(self):
        with pytest.raises(ValueError, match="io_workers"):
            GBO(mem="8MB", io_workers=0)

    def test_pool_loads_all_units(self):
        with GBO(mem="8MB", io_workers=4) as gbo:
            for i in range(12):
                gbo.add_unit(f"u{i}", reader(delay=0.01))
            assert wait_for(lambda: gbo.stats.units_prefetched == 12)
            for i in range(12):
                assert gbo.is_resident(f"u{i}")

    def test_pool_overlaps_slow_reads(self):
        """Four workers drain four slow reads ~concurrently."""
        with GBO(mem="8MB", io_workers=4) as gbo:
            t0 = time.perf_counter()
            for i in range(4):
                gbo.add_unit(f"u{i}", reader(delay=0.15))
            for i in range(4):
                gbo.wait_unit(f"u{i}")
            elapsed = time.perf_counter() - t0
            # Serial would be >= 0.6 s; parallel sleeps overlap.
            assert elapsed < 0.45

    def test_worker_report_accounts_loads(self):
        with GBO(mem="8MB", io_workers=2) as gbo:
            for i in range(8):
                gbo.add_unit(f"u{i}", reader(delay=0.02))
            assert wait_for(lambda: gbo.stats.units_prefetched == 8)
            report = gbo.worker_report()
            assert [r["worker"] for r in report] == [0, 1]
            assert sum(r["units_loaded"] for r in report) == 8
            assert all(r["read_seconds"] >= 0.0 for r in report)

    def test_queue_depth_stats(self):
        gate = threading.Event()
        with GBO(mem="8MB", io_workers=1) as gbo:
            for i in range(6):
                gbo.add_unit(f"u{i}", reader(gate=gate))
            # The worker may claim the first unit between adds, so the
            # observed peak is 6, or 5 if it got in early.
            assert gbo.stats.queue_depth_peak >= 5
            assert gbo.queue_depth >= 5   # one may be claimed already
            gate.set()
            assert wait_for(lambda: gbo.queue_depth == 0)


class TestPriorities:
    def test_priority_orders_prefetch(self):
        log = []
        gate = threading.Event()
        with GBO(mem="8MB", io_workers=1) as gbo:
            # A gated unit holds the single worker while the real test
            # units queue up, so their priorities decide the order.
            add_gate_unit(gbo, gate, log=log)
            gbo.add_unit("low", reader(log=log), priority=0.0)
            gbo.add_unit("high", reader(log=log), priority=5.0)
            gbo.add_unit("mid", reader(log=log), priority=1.0)
            gbo.add_unit("low2", reader(log=log), priority=0.0)
            gate.set()
            assert wait_for(lambda: len(log) == 5)
            assert log == ["gate", "high", "mid", "low", "low2"]

    def test_wait_boosts_to_front(self):
        log = []
        gate = threading.Event()
        with GBO(mem="8MB", io_workers=1) as gbo:
            add_gate_unit(gbo, gate, log=log)
            gbo.add_unit("a", reader(log=log), priority=9.0)
            gbo.add_unit("b", reader(log=log), priority=9.0)
            wanted = gbo.add_unit("wanted", reader(log=log), priority=0.0)
            waiter = threading.Thread(target=wanted.wait)
            waiter.start()
            assert wait_for(lambda: gbo.stats.wait_boosts == 1)
            gate.set()
            waiter.join(timeout=5.0)
            assert not waiter.is_alive()
            assert wait_for(lambda: len(log) == 4)
            assert log == ["gate", "wanted", "a", "b"]

    def test_set_unit_priority_reorders_queue(self):
        log = []
        gate = threading.Event()
        with GBO(mem="8MB", io_workers=1) as gbo:
            add_gate_unit(gbo, gate, log=log)
            gbo.add_unit("a", reader(log=log))
            gbo.add_unit("b", reader(log=log))
            assert gbo.unit_priority("b") == 0.0
            gbo.set_unit_priority("b", 10.0)
            assert gbo.unit_priority("b") == 10.0
            gate.set()
            assert wait_for(lambda: len(log) == 3)
            assert log == ["gate", "b", "a"]

    def test_unit_priority_unknown(self):
        with GBO(mem="8MB") as gbo:
            with pytest.raises(UnknownUnitError):
                gbo.unit_priority("ghost")
            with pytest.raises(UnknownUnitError):
                gbo.set_unit_priority("ghost", 1.0)


class TestCancellation:
    def test_cancel_queued_unit(self):
        gate = threading.Event()
        events = []
        tracer = UnitTracer()

        def hook(event, name, now):
            events.append((event, name))
            tracer(event, name, now)

        with GBO(mem="8MB", io_workers=1,
                 unit_event_hook=hook) as gbo:
            add_gate_unit(gbo, gate)
            victim = gbo.add_unit("victim", reader())
            assert victim.cancel() is True
            assert victim.state is UnitState.DELETED
            assert gbo.stats.units_cancelled == 1
            assert ("cancelled", "victim") in events
            gate.set()
            assert wait_for(lambda: gbo.stats.units_prefetched == 1)
            # The cancelled unit never loaded.
            assert not any(
                event == "loaded" and name == "victim"
                for event, name in events
            )

    def test_cancel_after_read_started_returns_false(self):
        with GBO(mem="8MB", io_workers=1) as gbo:
            handle = gbo.add_unit("u0", reader())
            handle.wait()
            assert handle.cancel() is False
            assert handle.is_resident

    def test_cancel_unknown_unit(self):
        with GBO(mem="8MB") as gbo:
            with pytest.raises(UnknownUnitError):
                gbo.cancel_unit("ghost")

    def test_cancelled_unit_can_be_re_added(self):
        gate = threading.Event()
        with GBO(mem="8MB", io_workers=1) as gbo:
            add_gate_unit(gbo, gate)
            gbo.add_unit("u0", reader())
            assert gbo.cancel_unit("u0") is True
            handle = gbo.add_unit("u0", reader())
            gate.set()
            handle.wait()
            assert handle.is_resident


class TestUnitHandles:
    def test_add_unit_returns_handle(self):
        with GBO(mem="8MB") as gbo:
            handle = gbo.add_unit("u0", reader())
            assert isinstance(handle, UnitHandle)
            assert handle.name == "u0"
            assert handle.wait() is handle     # chainable
            assert handle.is_resident
            assert handle.state is UnitState.RESIDENT
            assert handle.resident_bytes > 0
            handle.finish()
            handle.delete()
            assert handle.state is UnitState.DELETED

    def test_handle_priority_property(self):
        gate = threading.Event()
        with GBO(mem="8MB", io_workers=1) as gbo:
            add_gate_unit(gbo, gate)
            handle = gbo.add_unit("u0", reader(), priority=2.0)
            assert handle.priority == 2.0
            handle.priority = 7.0
            assert handle.priority == 7.0
            assert gbo.unit_priority("u0") == 7.0
            gate.set()

    def test_handle_read_foreground(self):
        with GBO(mem="8MB", background_io=False) as gbo:
            handle = gbo.add_unit("u0", reader())
            handle.read()
            assert handle.is_resident

    def test_gbo_unit_lookup(self):
        with GBO(mem="8MB") as gbo:
            gbo.add_unit("u0", reader())
            handle = gbo.unit("u0")
            assert handle == gbo.unit("u0")
            assert hash(handle) == hash(gbo.unit("u0"))
            with pytest.raises(UnknownUnitError):
                gbo.unit("ghost")

    def test_handles_in_example_style(self):
        """The quickstart pattern: add, wait, process, delete."""
        with GBO("8MB") as gbo:
            first = gbo.add_unit("file1", reader(), priority=1.0)
            second = gbo.add_unit("file2", reader())
            first.wait()
            first.delete()
            second.wait()
            second.finish()
            assert second.state is UnitState.RESIDENT


class TestWaitHistogram:
    def test_wait_samples_recorded(self):
        with GBO(mem="8MB", io_workers=1) as gbo:
            gbo.add_unit("u0", reader(delay=0.05))
            gbo.wait_unit("u0")
            stats = gbo.stats
            assert len(stats.wait_samples) == 1
            histogram = stats.wait_time_histogram()
            assert sum(histogram.values()) == 1
            snap = stats.snapshot()
            assert snap["wait_count"] == 1
            assert snap["wait_max_seconds"] >= snap["wait_mean_seconds"]
            assert "wait_samples" not in snap

    def test_hits_record_no_sample(self):
        with GBO(mem="8MB", io_workers=1) as gbo:
            handle = gbo.add_unit("u0", reader()).wait()
            handle.finish()
            gbo.wait_unit("u0")   # resident: pure hit
            assert gbo.stats.wait_hits == 1
            assert len(gbo.stats.wait_samples) == 1
