"""Unit tests for records and field buffers (section 3.1, Figure 2)."""

import numpy as np
import pytest

from repro.core.record import FieldBuffer, Record
from repro.core.types import UNKNOWN, DataType, FieldType, RecordType
from repro.errors import RecordStateError, SchemaError


def make_type() -> RecordType:
    rt = RecordType("fluid", num_keys=2)
    rt.insert_field(FieldType("block id", DataType.STRING, 11), True)
    rt.insert_field(FieldType("time-step id", DataType.STRING, 9), True)
    rt.insert_field(
        FieldType("pressure", DataType.DOUBLE, UNKNOWN), False
    )
    rt.insert_field(FieldType("conn", DataType.INT32, UNKNOWN), False)
    rt.commit()
    return rt


class TestFieldBuffer:
    def test_known_size_allocated_eagerly(self):
        buf = FieldBuffer(FieldType("k", DataType.STRING, 11))
        assert buf.allocated
        assert buf.size == 11

    def test_unknown_size_starts_unallocated(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        assert not buf.allocated
        with pytest.raises(RecordStateError):
            buf.size
        with pytest.raises(RecordStateError):
            buf.as_array()
        with pytest.raises(RecordStateError):
            buf.as_bytes()
        with pytest.raises(RecordStateError):
            buf.write(b"x")

    def test_allocate(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        buf.allocate(80)
        assert buf.allocated
        assert buf.size == 80
        assert len(buf.as_array()) == 10

    def test_double_allocate_rejected(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        buf.allocate(80)
        with pytest.raises(RecordStateError, match="already allocated"):
            buf.allocate(80)

    def test_allocate_fixed_size_rejected(self):
        buf = FieldBuffer(FieldType("k", DataType.STRING, 11))
        with pytest.raises(RecordStateError, match="fixed size"):
            buf.allocate(11)

    def test_allocate_misaligned_rejected(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        with pytest.raises(SchemaError):
            buf.allocate(81)

    def test_allocate_negative_rejected(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        with pytest.raises(ValueError):
            buf.allocate(-8)

    def test_as_array_is_zero_copy_view(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        buf.allocate(24)
        view = buf.as_array()
        view[:] = [1.0, 2.0, 3.0]
        again = buf.as_array()
        assert list(again) == [1.0, 2.0, 3.0]

    def test_write_bytes_and_str(self):
        buf = FieldBuffer(FieldType("k", DataType.STRING, 5))
        buf.write(b"abcd$")
        assert buf.as_bytes() == b"abcd$"
        buf.write("efgh$")
        assert buf.as_bytes() == b"efgh$"

    def test_write_ndarray(self):
        buf = FieldBuffer(FieldType("p", DataType.DOUBLE, UNKNOWN))
        buf.allocate(24)
        buf.write(np.array([1.5, 2.5, 3.5]))
        assert list(buf.as_array()) == [1.5, 2.5, 3.5]

    def test_write_wrong_size_rejected(self):
        buf = FieldBuffer(FieldType("k", DataType.STRING, 5))
        with pytest.raises(ValueError, match="write of 3 bytes"):
            buf.write(b"abc")

    def test_release(self):
        buf = FieldBuffer(FieldType("k", DataType.STRING, 11))
        assert buf.release() == 11
        assert not buf.allocated
        assert buf.release() == 0


class TestRecord:
    def test_uncommitted_type_rejected(self):
        rt = RecordType("r", num_keys=1)
        rt.insert_field(FieldType("k", DataType.STRING, 4), True)
        with pytest.raises(SchemaError, match="not committed"):
            Record(rt)

    def test_figure2_layout(self):
        """The exact record instance of Figure 2."""
        record = Record(make_type())
        record.field("block id").write(b"block_0001$")
        record.field("time-step id").write(b"0.000025$")
        record.field("pressure").allocate(80_000)
        assert record.field("block id").size == 11
        assert record.field("time-step id").size == 9
        assert record.field("pressure").size == 80_000

    def test_key_tuple(self):
        record = Record(make_type())
        record.field("block id").write(b"block_0001$")
        record.field("time-step id").write(b"0.000025$")
        assert record.key_tuple() == (b"block_0001$", b"0.000025$")

    def test_key_tuple_order_follows_key_declaration(self):
        rt = RecordType("r", num_keys=2)
        rt.insert_field(FieldType("second", DataType.STRING, 1), True)
        rt.insert_field(FieldType("first", DataType.STRING, 1), True)
        rt.commit()
        record = Record(rt)
        record.field("second").write(b"S")
        record.field("first").write(b"F")
        assert record.key_tuple() == (b"S", b"F")

    def test_unknown_field_rejected(self):
        record = Record(make_type())
        with pytest.raises(SchemaError, match="no field"):
            record.field("ghost")

    def test_allocated_bytes(self):
        record = Record(make_type())
        assert record.allocated_bytes() == 20  # the two key buffers
        record.field("pressure").allocate(800)
        assert record.allocated_bytes() == 820

    def test_release_all(self):
        record = Record(make_type())
        record.field("pressure").allocate(800)
        assert record.release_all() == 820
        assert record.allocated_bytes() == 0

    def test_mark_committed(self):
        record = Record(make_type())
        assert not record.committed
        assert record.committed_key is None
        record.mark_committed((b"a", b"b"))
        assert record.committed
        assert record.committed_key == (b"a", b"b")
