"""Property-based tests for the storage formats (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.io.plainbin import read_plain_array, write_plain_array
from repro.io.sdf import SdfReader, SdfWriter

DTYPES = st.sampled_from(["<f8", "<f4", "<i4", "<i8", "u1"])

finite_arrays = DTYPES.flatmap(
    lambda dtype: arrays(
        dtype=dtype,
        shape=array_shapes(min_dims=0, max_dims=4, min_side=0,
                           max_side=6),
        elements={
            "<f8": st.floats(-1e12, 1e12, width=64),
            "<f4": st.floats(-1e6, 1e6, width=32),
            "<i4": st.integers(-2**31, 2**31 - 1),
            "<i8": st.integers(-2**63, 2**63 - 1),
            "u1": st.integers(0, 255),
        }[dtype],
    )
)

attr_values = st.one_of(
    st.integers(-2**63, 2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

attr_dicts = st.dictionaries(
    st.text(min_size=1, max_size=20), attr_values, max_size=5
)

# The SDF name limit is 64 *bytes* of UTF-8, not characters.
dataset_names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters="_-:",
    ),
    min_size=1,
    max_size=32,
).filter(lambda s: len(s.encode("utf-8")) <= 64)


@settings(max_examples=40, deadline=None)
@given(data=finite_arrays)
def test_plainbin_roundtrip(tmp_path_factory, data):
    path = str(tmp_path_factory.mktemp("pb") / "arr.pbin")
    write_plain_array(path, data)
    back = read_plain_array(path)
    assert back.shape == data.shape
    assert back.dtype == data.dtype
    assert np.array_equal(back, data)


@settings(max_examples=30, deadline=None)
@given(
    datasets=st.lists(
        st.tuples(dataset_names, finite_arrays, attr_dicts),
        max_size=5,
        unique_by=lambda item: item[0],
    ),
    file_attrs=attr_dicts,
)
def test_sdf_roundtrip(tmp_path_factory, datasets, file_attrs):
    path = str(tmp_path_factory.mktemp("sdf") / "f.sdf")
    with SdfWriter(path) as writer:
        for key, value in file_attrs.items():
            writer.set_attribute(key, value)
        for name, data, attrs in datasets:
            writer.add_dataset(name, data, attrs=attrs)
    with SdfReader(path) as reader:
        assert reader.dataset_names == [n for n, _d, _a in datasets]
        got_file_attrs = reader.file_attributes()
        for key, value in file_attrs.items():
            assert got_file_attrs[key] == value
        for name, data, attrs in datasets:
            back = reader.read(name)
            assert back.shape == data.shape
            assert np.array_equal(back, data)
            assert reader.attributes(name) == attrs


@settings(max_examples=30, deadline=None)
@given(data=finite_arrays)
def test_sdf_info_consistent_with_data(tmp_path_factory, data):
    path = str(tmp_path_factory.mktemp("sdf") / "g.sdf")
    with SdfWriter(path) as writer:
        writer.add_dataset("x", data)
    with SdfReader(path) as reader:
        info = reader.info("x")
        assert info.shape == data.shape
        assert info.data_nbytes == data.astype(
            data.dtype.newbyteorder("<")
        ).nbytes


@settings(max_examples=30, deadline=None)
@given(
    datasets=st.lists(
        st.tuples(dataset_names, finite_arrays, attr_dicts),
        max_size=5,
        unique_by=lambda item: item[0],
    ),
    file_attrs=attr_dicts,
)
def test_cdf_roundtrip(tmp_path_factory, datasets, file_attrs):
    from repro.io.cdf import CdfReader, CdfWriter

    path = str(tmp_path_factory.mktemp("cdf") / "f.cdf")
    with CdfWriter(path) as writer:
        for key, value in file_attrs.items():
            writer.set_attribute(key, value)
        for name, data, attrs in datasets:
            writer.add_dataset(name, data, attrs=attrs)
    with CdfReader(path) as reader:
        assert reader.dataset_names == [n for n, _d, _a in datasets]
        got = reader.file_attributes()
        for key, value in file_attrs.items():
            assert got[key] == value
        for name, data, attrs in datasets:
            back = reader.read(name)
            assert back.shape == data.shape
            assert np.array_equal(back, data)
            assert reader.attributes(name) == attrs


@settings(max_examples=25, deadline=None)
@given(datasets=st.lists(
    st.tuples(dataset_names, finite_arrays),
    min_size=1, max_size=4,
    unique_by=lambda item: item[0],
))
def test_formats_agree_on_contents(tmp_path_factory, datasets):
    """Any dataset bundle reads back identically from SDF and CDF."""
    from repro.io.cdf import CdfReader, CdfWriter

    base = tmp_path_factory.mktemp("fmt")
    sdf, cdf = str(base / "a.sdf"), str(base / "a.cdf")
    with SdfWriter(sdf) as writer:
        for name, data in datasets:
            writer.add_dataset(name, data)
    with CdfWriter(cdf) as writer:
        for name, data in datasets:
            writer.add_dataset(name, data)
    with SdfReader(sdf) as sr, CdfReader(cdf) as cr:
        assert sr.dataset_names == cr.dataset_names
        for name, _data in datasets:
            assert np.array_equal(sr.read(name), cr.read(name))
            assert sr.info(name).shape == cr.info(name).shape
