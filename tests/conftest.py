"""Shared fixtures for the test suite, plus the races plugin.

The ``races`` marker turns the existing ``test_database_*`` suites into
lockset-race tests: with ``REPRO_ANALYSIS=1`` (see
:mod:`repro.analysis`), every GBO built by a test uses tracked locks,
the ``@guarded_by`` descriptors are installed for the duration of each
test, and the Eraser tracker plus the lock-order graph are checked
after it. With analysis disabled (the default) the plugin is inert and
the suites run exactly as before. CI runs
``REPRO_ANALYSIS=1 pytest -m races`` as a separate job.
"""

import pytest

from repro.core.database import GBO
from repro.core.schema import fluid_sample_schema
from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "races: database suites doubling as concurrency-sanitizer "
        "tests (meaningful under REPRO_ANALYSIS=1)",
    )


def pytest_collection_modifyitems(items):
    for item in items:
        filename = item.nodeid.split("::", 1)[0].rsplit("/", 1)[-1]
        if filename.startswith(("test_database_", "test_service_")):
            item.add_marker(pytest.mark.races)


@pytest.fixture(autouse=True)
def _concurrency_sanitizer(request):
    """Install guarded-field tracking and settle sanitizer verdicts.

    No-op unless analysis is enabled, so the default test run pays one
    boolean check per test and nothing else.
    """
    from repro.analysis import primitives

    if not primitives.analysis_enabled():
        yield
        return
    from repro.analysis import races as analysis_races
    from repro.analysis.lockorder import GLOBAL_GRAPH

    installed = analysis_races.install()
    analysis_races.TRACKER.reset()
    GLOBAL_GRAPH.reset()
    try:
        yield
        if request.node.get_closest_marker("races") is not None:
            analysis_races.TRACKER.check()
            GLOBAL_GRAPH.check()
    finally:
        analysis_races.uninstall(*installed)
        analysis_races.TRACKER.reset()
        GLOBAL_GRAPH.reset()


@pytest.fixture(scope="session")
def small_dataset(tmp_path_factory):
    """A small generated snapshot dataset shared across the session.

    12 blocks, 4 snapshots, 2 files per snapshot — enough structure for
    every io/viz integration test while staying fast.
    """
    directory = tmp_path_factory.mktemp("dataset")
    spec = SnapshotSpec(
        config=TitanConfig.scaled(0.15),
        n_steps=4,
        files_per_snapshot=2,
    )
    return generate_dataset(spec, str(directory))


@pytest.fixture
def gbo():
    """A multi-thread GBO with a roomy budget; closed after the test."""
    database = GBO(mem_mb=64)
    yield database
    database.close()


@pytest.fixture
def gbo_single():
    """A single-thread (paper 'G') GBO; closed after the test."""
    database = GBO(mem_mb=64, background_io=False)
    yield database
    database.close()


@pytest.fixture
def fluid_gbo(gbo):
    """A GBO with the paper's Table-1 'fluid' record type committed."""
    fluid_sample_schema().ensure(gbo)
    return gbo
