"""Shared fixtures for the test suite."""

import pytest

from repro.core.database import GBO
from repro.core.schema import fluid_sample_schema
from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig


@pytest.fixture(scope="session")
def small_dataset(tmp_path_factory):
    """A small generated snapshot dataset shared across the session.

    12 blocks, 4 snapshots, 2 files per snapshot — enough structure for
    every io/viz integration test while staying fast.
    """
    directory = tmp_path_factory.mktemp("dataset")
    spec = SnapshotSpec(
        config=TitanConfig.scaled(0.15),
        n_steps=4,
        files_per_snapshot=2,
    )
    return generate_dataset(spec, str(directory))


@pytest.fixture
def gbo():
    """A multi-thread GBO with a roomy budget; closed after the test."""
    database = GBO(mem_mb=64)
    yield database
    database.close()


@pytest.fixture
def gbo_single():
    """A single-thread (paper 'G') GBO; closed after the test."""
    database = GBO(mem_mb=64, background_io=False)
    yield database
    database.close()


@pytest.fixture
def fluid_gbo(gbo):
    """A GBO with the paper's Table-1 'fluid' record type committed."""
    fluid_sample_schema().ensure(gbo)
    return gbo
