"""Unit tests for the record index and key normalization (section 3.3)."""

import numpy as np
import pytest

from repro.core.index import RecordIndex, normalize_key_values
from repro.core.record import Record
from repro.core.types import UNKNOWN, DataType, FieldType, RecordType
from repro.errors import DuplicateKeyError, KeyLookupError


def make_type(name="fluid") -> RecordType:
    rt = RecordType(name, num_keys=1)
    rt.insert_field(FieldType("id", DataType.STRING, 4), True)
    rt.insert_field(FieldType("data", DataType.DOUBLE, UNKNOWN), False)
    rt.commit()
    return rt


def make_record(rt, key: bytes) -> Record:
    record = Record(rt)
    record.field("id").write(key)
    return record


class TestNormalizeKeyValues:
    def test_bytes_passthrough(self):
        assert normalize_key_values([b"ab"]) == (b"ab",)

    def test_str_encoded(self):
        assert normalize_key_values(["ab"]) == (b"ab",)

    def test_bytearray_and_memoryview(self):
        assert normalize_key_values(
            [bytearray(b"ab"), memoryview(b"cd")]
        ) == (b"ab", b"cd")

    def test_numpy_buffer(self):
        arr = np.array([1.5])
        assert normalize_key_values([arr]) == (arr.tobytes(),)

    def test_mixed(self):
        assert normalize_key_values(
            [b"a", "b"]
        ) == (b"a", b"b")

    def test_non_buffer_rejected(self):
        with pytest.raises(TypeError):
            normalize_key_values([object()])


class TestRecordIndex:
    def test_commit_and_lookup(self):
        index = RecordIndex()
        rt = make_type()
        record = make_record(rt, b"A001")
        key = index.commit(record)
        index.track(record, "unit1")
        assert key == (b"A001",)
        assert index.lookup("fluid", (b"A001",)) is record
        assert index.contains("fluid", (b"A001",))
        assert index.count() == 1
        assert index.count("fluid") == 1
        assert index.count("other") == 0

    def test_lookup_missing_raises(self):
        index = RecordIndex()
        with pytest.raises(KeyLookupError):
            index.lookup("fluid", (b"A001",))

    def test_duplicate_key_rejected(self):
        index = RecordIndex()
        rt = make_type()
        index.commit(make_record(rt, b"A001"))
        with pytest.raises(DuplicateKeyError):
            index.commit(make_record(rt, b"A001"))

    def test_same_key_different_types_ok(self):
        index = RecordIndex()
        a = make_record(make_type("a"), b"A001")
        b = make_record(make_type("b"), b"A001")
        index.commit(a)
        index.commit(b)
        assert index.lookup("a", (b"A001",)) is a
        assert index.lookup("b", (b"A001",)) is b

    def test_records_of_type_in_key_order(self):
        index = RecordIndex()
        rt = make_type()
        for key in (b"C003", b"A001", b"B002"):
            record = make_record(rt, key)
            index.commit(record)
            index.track(record, "u")
        ids = [
            r.field("id").as_bytes()
            for r in index.records_of_type("fluid")
        ]
        assert ids == [b"A001", b"B002", b"C003"]

    def test_drop_unit_removes_all(self):
        index = RecordIndex()
        rt = make_type()
        for i, unit in enumerate(("u1", "u1", "u2")):
            record = make_record(rt, f"A{i:03d}".encode())
            index.commit(record)
            index.track(record, unit)
        dropped = index.drop_unit("u1")
        assert len(dropped) == 2
        assert index.count() == 1
        assert not index.contains("fluid", (b"A000",))
        assert index.contains("fluid", (b"A002",))
        assert index.unit_records("u1") == []

    def test_drop_unknown_unit_is_noop(self):
        index = RecordIndex()
        assert index.drop_unit("ghost") == []

    def test_drop_record(self):
        index = RecordIndex()
        rt = make_type()
        record = make_record(rt, b"A001")
        index.commit(record)
        index.track(record, "u1")
        index.drop_record(record)
        assert index.count() == 0
        assert index.unit_records("u1") == []

    def test_drop_uncommitted_record(self):
        index = RecordIndex()
        rt = make_type()
        record = make_record(rt, b"A001")
        index.track(record, None)  # unattached, never committed
        index.drop_record(record)  # must not raise

    def test_track_unattached(self):
        index = RecordIndex()
        rt = make_type()
        record = make_record(rt, b"A001")
        index.commit(record)
        index.track(record, None)
        assert record.unit_name is None
        assert index.lookup("fluid", (b"A001",)) is record

    def test_clear_returns_everything(self):
        index = RecordIndex()
        rt = make_type()
        tracked = make_record(rt, b"A001")
        index.commit(tracked)
        index.track(tracked, "u")
        loose = make_record(rt, b"A002")
        index.track(loose, None)
        records = index.clear()
        assert set(records) == {tracked, loose}
        assert index.count() == 0

    def test_mutated_key_does_not_delete_other_record(self):
        """The paper's caveat: mutating key buffers desynchronizes the
        index. Dropping the stale record must not remove whichever
        record now legitimately owns that key slot."""
        index = RecordIndex()
        rt = make_type()
        first = make_record(rt, b"A001")
        index.commit(first)
        index.track(first, "u1")
        # Application mutates the key buffer after commit (allowed).
        first.field("id").write(b"ZZZZ")
        index.drop_unit("u1")
        # The slot under the *original* key was first's; it is gone.
        assert not index.contains("fluid", (b"A001",))
