"""Colormap mapping behaviour."""

import numpy as np
import pytest

from repro.viz.colormap import Colormap


def test_known_names():
    names = Colormap.names()
    for expected in ("rainbow", "heat", "gray", "coolwarm"):
        assert expected in names


def test_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown colormap"):
        Colormap("plasma")


def test_gray_endpoints():
    cmap = Colormap("gray")
    rgb = cmap.map(np.array([0.0, 1.0]))
    assert np.allclose(rgb[0], [0, 0, 0])
    assert np.allclose(rgb[1], [1, 1, 1])


def test_autoscale_uses_data_range():
    cmap = Colormap("gray")
    rgb = cmap.map(np.array([10.0, 20.0, 30.0]))
    assert np.allclose(rgb[0], [0, 0, 0])
    assert np.allclose(rgb[1], [0.5, 0.5, 0.5])
    assert np.allclose(rgb[2], [1, 1, 1])


def test_fixed_range_clips():
    cmap = Colormap("gray", vmin=0.0, vmax=1.0)
    rgb = cmap.map(np.array([-5.0, 0.5, 5.0]))
    assert np.allclose(rgb[0], [0, 0, 0])
    assert np.allclose(rgb[2], [1, 1, 1])


def test_constant_data_maps_low_end():
    cmap = Colormap("rainbow")
    rgb = cmap.map(np.full(4, 3.0))
    assert np.allclose(rgb, rgb[0])


def test_rainbow_order_blue_to_red():
    cmap = Colormap("rainbow", vmin=0.0, vmax=1.0)
    low = cmap.map(np.array([0.0]))[0]
    high = cmap.map(np.array([1.0]))[0]
    assert low[2] > low[0]    # blue end
    assert high[0] > high[2]  # red end


def test_map_uint8():
    cmap = Colormap("gray", vmin=0.0, vmax=1.0)
    rgb = cmap.map_uint8(np.array([0.0, 1.0]))
    assert rgb.dtype == np.uint8
    assert rgb[0].tolist() == [0, 0, 0]
    assert rgb[1].tolist() == [255, 255, 255]


def test_shape_preserved():
    cmap = Colormap("heat")
    values = np.zeros((4, 3))
    values[0, 0] = 1.0
    assert cmap.map(values).shape == (4, 3, 3)
