"""Invariant checker and the non-blocking deadlock predictor.

``check_invariants`` must pass on healthy databases and name the exact
corruption on tampered ones; ``predict_deadlock`` must agree with the
runtime detector in ``wait_unit`` — predicting doom only for waits the
runtime would also refuse, and staying silent when the runtime's
reclamation (emergency eviction of idle prefetches, partial-load
rollback) can heal the wedge.
"""

import time

import pytest

from repro.analysis.invariants import (
    check_invariants,
    io_blocked_report,
    predict_deadlock,
)
from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.core.units import UnitState
from repro.errors import GodivaDeadlockError, InvariantViolation

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 16, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))

UNIT_BYTES = 1000
# Key + data buffer + record overhead (see the accounting tests).
UNIT_FOOTPRINT = 16 + UNIT_BYTES + 64


def reader(nbytes=UNIT_BYTES):
    def read_fn(gbo, unit_name):
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(16)[:16].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        record.field("data").as_array()[:] = 3.0
        gbo.commit_record(record)

    return read_fn


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestCheckInvariants:
    def test_healthy_database_is_clean(self, gbo):
        gbo.add_unit("u", reader())
        gbo.wait_unit("u")
        gbo.finish_unit("u")
        assert check_invariants(gbo) == []

    def test_negative_refcount_detected(self, gbo_single):
        gbo_single.add_unit("u", reader())
        with gbo_single._lock:
            gbo_single._units["u"].ref_count = -1
        problems = check_invariants(gbo_single, raise_on_violation=False)
        assert any("negative ref_count" in p for p in problems)
        with pytest.raises(InvariantViolation, match="negative ref_count"):
            check_invariants(gbo_single)
        with gbo_single._lock:
            gbo_single._units["u"].ref_count = 0

    def test_resident_bytes_on_nonresident_unit_detected(
        self, gbo_single
    ):
        gbo_single.add_unit("u", reader())
        with gbo_single._lock:
            gbo_single._units["u"].resident_bytes = 128
        problems = check_invariants(gbo_single, raise_on_violation=False)
        assert any("still accounts" in p for p in problems)
        with gbo_single._lock:
            gbo_single._units["u"].resident_bytes = 0

    def test_accounting_mismatch_detected(self, gbo_single):
        gbo_single.add_unit("u", reader())
        gbo_single.wait_unit("u")
        with gbo_single._lock:
            gbo_single._units["u"].resident_bytes += 10 ** 9
        problems = check_invariants(gbo_single, raise_on_violation=False)
        assert any("accountant" in p for p in problems)
        with gbo_single._lock:
            gbo_single._units["u"].resident_bytes -= 10 ** 9
        assert check_invariants(gbo_single) == []

    def test_queue_ghost_detected(self, gbo_single):
        with gbo_single._lock:
            gbo_single._queue.push("ghost", priority=0.0)
        problems = check_invariants(gbo_single, raise_on_violation=False)
        assert any("unknown unit 'ghost'" in p for p in problems)
        with gbo_single._lock:
            gbo_single._queue.remove("ghost")
        assert check_invariants(gbo_single) == []


class TestIoBlockedReport:
    def test_idle_database_reports_nothing(self, gbo):
        assert io_blocked_report(gbo) == []

    def test_wedged_worker_reported_with_details(self):
        budget = 2 * UNIT_FOOTPRINT
        with GBO(mem_bytes=budget, io_workers=1) as gbo:
            for i in range(3):
                gbo.add_unit(f"u{i}", reader())
            gbo.wait_unit("u0")
            gbo.wait_unit("u1")
            assert wait_for(lambda: io_blocked_report(gbo))
            (entry,) = io_blocked_report(gbo)
            assert entry["needs_bytes"] > 0
            assert entry["loading_unit"] == "u2"
            assert isinstance(entry["thread"], str)
            gbo.finish_unit("u0")
            gbo.finish_unit("u1")


class TestPredictDeadlock:
    def test_healthy_database_predicts_nothing(self, gbo):
        gbo.add_unit("u", reader())
        assert predict_deadlock(gbo) is None
        assert predict_deadlock(gbo, "u") is None
        gbo.wait_unit("u")

    def test_unknown_unit_predicts_nothing(self, gbo):
        assert predict_deadlock(gbo, "nope") is None

    def test_doomed_wait_predicted_before_runtime_detector(self):
        """The predictor and the runtime detector must agree on a
        genuinely wedged state — and the wedge must clear once the
        application finishes a pinned unit."""
        budget = 2 * UNIT_FOOTPRINT
        with GBO(mem_bytes=budget, io_workers=1) as gbo:
            for i in range(4):
                gbo.add_unit(f"u{i}", reader())
            gbo.wait_unit("u0")
            gbo.wait_unit("u1")
            # u0/u1 fill the budget, pinned by the waits above; the
            # worker blocks loading u2 and u3 can never start.
            assert wait_for(lambda: io_blocked_report(gbo))

            assert predict_deadlock(gbo, "u0") is None  # already here
            message = predict_deadlock(gbo, "u3")
            assert message is not None
            assert "u3" in message and "deadlock" in message
            assert "finish_unit" in message or "never drain" in message
            assert predict_deadlock(gbo) is not None

            # The runtime detector agrees with the prediction.
            with pytest.raises(GodivaDeadlockError,
                               match="finish_unit/delete_unit"):
                gbo.wait_unit("u3")

            # Following the report's advice unwedges everything.
            gbo.finish_unit("u0")
            gbo.wait_unit("u2")
            assert predict_deadlock(gbo, "u2") is None
            gbo.finish_unit("u1")
            gbo.finish_unit("u2")

    def test_idle_prefetch_is_reclaimable_not_a_deadlock(self):
        """A speculative prefetch nobody consumed must not doom a
        demand fetch: the predictor stays silent and the runtime
        detector emergency-evicts the idle unit instead of raising."""
        budget = 2 * UNIT_FOOTPRINT
        with GBO(mem_bytes=budget, io_workers=1) as gbo:
            gbo.add_unit("u0", reader())
            gbo.add_unit("u1", reader())
            gbo.wait_unit("u0")  # pinned; u1 loads but is never waited
            assert wait_for(
                lambda: gbo.unit_state("u1") is UnitState.RESIDENT
            )
            gbo.add_unit("u2", reader())
            assert wait_for(lambda: io_blocked_report(gbo))

            # u1 is resident, unfinished, unreferenced: reclaimable.
            assert predict_deadlock(gbo, "u2") is None
            assert predict_deadlock(gbo) is None

            gbo.wait_unit("u2")  # heals by evicting the idle prefetch
            assert gbo.unit_state("u1") is UnitState.EVICTED
            assert gbo.unit_state("u2") is UnitState.RESIDENT

            # The evicted prefetch transparently reloads on demand.
            gbo.finish_unit("u2")
            gbo.wait_unit("u1")
            assert gbo.unit_state("u1") is UnitState.RESIDENT
            gbo.finish_unit("u0")
            gbo.finish_unit("u1")
