"""Background prefetching, caching, eviction and reload (sections 3.2-3.3)."""

import threading
import time

import pytest

from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.core.units import UnitState

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 8, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


def reader(nbytes=800, delay=0.0, log=None):
    def read_fn(gbo, unit_name):
        if delay:
            time.sleep(delay)
        if log is not None:
            log.append(unit_name)
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(8)[:8].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        record.field("data").as_array()[:] = 2.5
        gbo.commit_record(record)

    return read_fn


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestBackgroundPrefetch:
    def test_units_prefetched_without_waiting(self):
        """addUnit alone triggers background loading."""
        with GBO(mem_mb=8) as gbo:
            for i in range(3):
                gbo.add_unit(f"u{i}", reader())
            assert wait_for(
                lambda: gbo.stats.units_prefetched == 3
            )
            for i in range(3):
                assert gbo.is_resident(f"u{i}")

    def test_prefetch_order_is_fifo(self):
        log = []
        with GBO(mem_mb=8) as gbo:
            for i in range(5):
                gbo.add_unit(f"u{i}", reader(log=log))
            assert wait_for(lambda: len(log) == 5)
            assert log == [f"u{i}" for i in range(5)]

    def test_wait_returns_after_prefetch(self):
        with GBO(mem_mb=8) as gbo:
            gbo.add_unit("u0", reader(delay=0.05))
            gbo.wait_unit("u0")
            assert gbo.is_resident("u0")
            assert gbo.stats.wait_misses == 1

    def test_overlap_happens_while_main_computes(self):
        """While the main thread is busy, later units arrive in the
        background — the essence of TG."""
        with GBO(mem_mb=8) as gbo:
            for i in range(3):
                gbo.add_unit(f"u{i}", reader(delay=0.02))
            gbo.wait_unit("u0")
            time.sleep(0.2)   # "computation" on u0
            hits_before = gbo.stats.wait_hits
            gbo.wait_unit("u1")
            gbo.wait_unit("u2")
            assert gbo.stats.wait_hits == hits_before + 2

    def test_delete_queued_before_prefetch(self):
        """deleteUnit on a queued unit cancels its prefetch."""
        log = []
        with GBO(mem_mb=8) as gbo:
            gbo.add_unit("slow", reader(delay=0.1, log=log))
            gbo.add_unit("victim", reader(log=log))
            gbo.delete_unit("victim")
            gbo.wait_unit("slow")
            time.sleep(0.05)
            assert log == ["slow"]
            assert gbo.unit_state("victim") is UnitState.DELETED

    def test_delete_while_reading_is_deferred(self):
        """deleteUnit on a mid-read unit is honoured when the read
        callback returns."""
        started = threading.Event()

        def slow_read(gbo, unit_name):
            started.set()
            time.sleep(0.1)
            reader()(gbo, unit_name)

        with GBO(mem_mb=8) as gbo:
            gbo.add_unit("u", slow_read)
            assert started.wait(timeout=5.0)
            gbo.delete_unit("u")
            assert wait_for(
                lambda: gbo.unit_state("u") is UnitState.DELETED
            )
            assert gbo.record_count("item") == 0
            assert gbo.mem_used_bytes == 0


class TestEvictionAndReload:
    def test_lru_eviction_under_pressure(self):
        """Finished units are evicted LRU-first when memory runs low."""
        unit_bytes = 2000
        budget = 3 * (unit_bytes + 200)
        with GBO(mem_bytes=budget, background_io=False) as gbo:
            for i in range(6):
                gbo.add_unit(f"u{i}", reader(nbytes=unit_bytes))
            for i in range(6):
                gbo.wait_unit(f"u{i}")
                gbo.finish_unit(f"u{i}")
            assert gbo.stats.evictions >= 3
            # Oldest units evicted; the most recent survive.
            assert gbo.unit_state("u0") is UnitState.EVICTED
            assert gbo.unit_state("u5") is UnitState.RESIDENT

    def test_evicted_unit_records_unqueryable(self):
        with GBO(mem_bytes=5000, background_io=False) as gbo:
            for i in range(4):
                gbo.add_unit(f"u{i}", reader(nbytes=2000))
                gbo.wait_unit(f"u{i}")
                gbo.finish_unit(f"u{i}")
            from repro.errors import KeyLookupError

            assert gbo.unit_state("u0") is UnitState.EVICTED
            with pytest.raises(KeyLookupError):
                gbo.get_field_buffer("item", "data", [b"u0      "])

    def test_wait_reloads_evicted_unit(self):
        """wait_unit on an evicted unit transparently re-fetches it."""
        with GBO(mem_bytes=5000, background_io=False) as gbo:
            for i in range(4):
                gbo.add_unit(f"u{i}", reader(nbytes=2000))
                gbo.wait_unit(f"u{i}")
                gbo.finish_unit(f"u{i}")
            assert gbo.unit_state("u0") is UnitState.EVICTED
            gbo.wait_unit("u0")
            assert gbo.is_resident("u0")
            assert gbo.stats.units_reloaded >= 1
            data = gbo.get_field_buffer("item", "data", [b"u0      "])
            assert (data == 2.5).all()

    def test_multithread_wait_reloads_evicted_unit(self):
        with GBO(mem_bytes=5000) as gbo:
            for i in range(4):
                gbo.add_unit(f"u{i}", reader(nbytes=2000))
                gbo.wait_unit(f"u{i}")
                gbo.finish_unit(f"u{i}")
            assert wait_for(
                lambda: gbo.unit_state("u0") is UnitState.EVICTED
            )
            gbo.wait_unit("u0")
            assert gbo.is_resident("u0")

    def test_query_touch_protects_hot_unit(self):
        """Touching a finished unit's records updates LRU recency, so
        the hot unit survives eviction."""
        with GBO(mem_bytes=7000, background_io=False) as gbo:
            for i in range(3):
                gbo.add_unit(f"u{i}", reader(nbytes=2000))
                gbo.wait_unit(f"u{i}")
                gbo.finish_unit(f"u{i}")
            # u0 is LRU; touch it via a query.
            gbo.get_field_buffer("item", "data", [b"u0      "])
            # Loading one more unit forces one eviction: u1 must go.
            gbo.add_unit("u3", reader(nbytes=2000))
            gbo.wait_unit("u3")
            assert gbo.unit_state("u1") is UnitState.EVICTED
            assert gbo.unit_state("u0") is UnitState.RESIDENT

    def test_io_thread_blocks_then_resumes_on_finish(self):
        """Prefetch outrunning the consumer blocks on memory and resumes
        when the application finishes a unit (section 3.2)."""
        unit_bytes = 2000
        budget = 2 * (unit_bytes + 200)
        with GBO(mem_bytes=budget) as gbo:
            for i in range(4):
                gbo.add_unit(f"u{i}", reader(nbytes=unit_bytes))
            gbo.wait_unit("u0")
            # u1 prefetches; u2 must block on memory.
            assert wait_for(lambda: gbo.is_resident("u1"))
            time.sleep(0.05)
            assert not gbo.is_resident("u2")
            gbo.finish_unit("u0")   # eviction candidate appears
            gbo.wait_unit("u2")     # unblocks the I/O thread
            assert gbo.is_resident("u2")
            assert gbo.stats.io_thread_blocked_seconds > 0.0
