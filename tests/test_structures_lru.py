"""Unit tests for the LRU recency list."""

import pytest

from repro.structures.lru import LruList


@pytest.fixture
def lru():
    return LruList()


def test_empty(lru):
    assert len(lru) == 0
    assert "x" not in lru
    assert list(lru) == []


def test_touch_inserts(lru):
    lru.touch("a")
    assert "a" in lru
    assert len(lru) == 1


def test_iteration_order_lru_to_mru(lru):
    for item in ("a", "b", "c"):
        lru.touch(item)
    assert list(lru) == ["a", "b", "c"]


def test_touch_moves_to_mru(lru):
    for item in ("a", "b", "c"):
        lru.touch(item)
    lru.touch("a")
    assert list(lru) == ["b", "c", "a"]
    assert lru.peek_lru() == "b"


def test_pop_lru_order(lru):
    for item in ("a", "b", "c"):
        lru.touch(item)
    assert lru.pop_lru() == "a"
    assert lru.pop_lru() == "b"
    assert lru.pop_lru() == "c"
    assert len(lru) == 0


def test_pop_empty_raises(lru):
    with pytest.raises(KeyError):
        lru.pop_lru()
    with pytest.raises(KeyError):
        lru.peek_lru()


def test_discard(lru):
    for item in ("a", "b", "c"):
        lru.touch(item)
    assert lru.discard("b")
    assert not lru.discard("b")
    assert list(lru) == ["a", "c"]


def test_discard_head_and_tail(lru):
    for item in ("a", "b", "c"):
        lru.touch(item)
    lru.discard("a")
    lru.discard("c")
    assert list(lru) == ["b"]


def test_clear(lru):
    for item in ("a", "b"):
        lru.touch(item)
    lru.clear()
    assert len(lru) == 0
    lru.touch("c")
    assert list(lru) == ["c"]


def test_retouch_single_item(lru):
    lru.touch("only")
    lru.touch("only")
    assert list(lru) == ["only"]
    assert len(lru) == 1
