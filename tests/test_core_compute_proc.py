"""ProcessComputePool: GIL-free compute plane over the arena seam.

The contracts under test (DESIGN.md, compute plane):

* **surface parity** — drop-in sibling of :class:`ComputePool`: same
  ``submit``/``map``/``wait_all``/priority/steal/stats behaviour, so
  the renderer and pipeline never know which backend they run on;
* **zero-copy transport** — ndarray inputs at or above the token
  threshold travel as sealed shared-memory tokens, results come back
  as tokens the coordinator attaches read-only;
* **graceful degradation** — non-importable callables run inline,
  ``workers == 1`` never forks, a worker killed mid-task is reaped and
  its in-flight tasks re-run inline;
* **shm hygiene** — ``close()`` drains, joins, and leaves zero
  residual ``/dev/shm`` segments, under both ``fork`` and ``spawn``.

Marked ``races`` so the sanitizer job replays the coordinator-side
locking under the lockset detector.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.arena import SharedMemoryArena
from repro.core.compute import ComputePool
from repro.core.compute_proc import (
    ProcessComputePool,
    SharedInput,
    sweep_shm_prefix,
)
from repro.core.stats import GodivaStats
from repro.errors import ComputePoolClosedError

pytestmark = pytest.mark.races

#: Start methods exercised for the real-worker tests. Both must hold:
#: fork is linux's default, spawn is what macOS/Windows (and any
#: fork-unsafe embedder) would use.
START_METHODS = ("fork", "spawn")

#: Big enough to clear the 32 KiB token threshold.
SHAPE = (200, 128)


def _shm_entries(prefix):
    try:
        return [n for n in os.listdir("/dev/shm") if prefix in n]
    except FileNotFoundError:
        return []


# ----------------------------------------------------------------------
# Module-level task kernels (workers re-import this module by name).
# ----------------------------------------------------------------------

_ORDER = []


def double(array):
    return array * 2.0


def add(a, b):
    return a + b


def total(array):
    return float(np.sum(array))


def boom():
    raise ValueError("kernel exploded")


def record(tag):
    _ORDER.append(tag)
    return tag


def wait_for_flag(marker_dir, payload):
    """Touch a started-marker, then loop until a stop-file appears."""
    marker = os.path.join(marker_dir, f"started-{os.getpid()}")
    with open(marker, "w") as f:
        f.write("x")
    stop = os.path.join(marker_dir, "stop")
    deadline = time.monotonic() + 30.0
    while not os.path.exists(stop) and time.monotonic() < deadline:
        time.sleep(0.01)
    return payload * 3.0


# ----------------------------------------------------------------------
# Serial / helping-waiter paths (no real processes)
# ----------------------------------------------------------------------

def test_workers_validated():
    with pytest.raises(ValueError):
        ProcessComputePool(0)
    with pytest.raises(ValueError):
        ProcessComputePool(2, max_procs=0)


def test_serial_submit_runs_inline():
    pool = ProcessComputePool(1)
    task = pool.submit(add, 2, 3)
    assert task.done
    assert task.wait() == 5
    assert not pool.procs
    pool.close()


def test_surface_parity_with_thread_pool():
    """Every public entry point of ComputePool exists here too."""
    for name in ("submit", "map", "wait_all", "start", "close",
                 "share", "queue_len", "workers", "parallel",
                 "closed", "stats"):
        assert hasattr(ProcessComputePool(1), name), name
    assert ProcessComputePool.distributed is True
    assert ComputePool.distributed is False


def test_waiter_helps_without_processes():
    """spawn_procs=0: waiters steal and run queued tasks inline."""
    stats = GodivaStats()
    pool = ProcessComputePool(4, stats=stats, spawn_procs=0)
    pool.start()
    tasks = [pool.submit(add, i, i) for i in range(5)]
    assert [t.wait() for t in tasks] == [0, 2, 4, 6, 8]
    assert stats.compute_steals > 0
    assert stats.compute_dispatches == 0
    pool.close()


def test_waiter_helps_in_priority_order():
    """Stolen tasks drain the queue most-urgent-first."""
    del _ORDER[:]
    pool = ProcessComputePool(4, spawn_procs=0)
    pool.start()
    low = pool.submit(record, "low", priority=-1.0)
    first = pool.submit(record, "first")
    second = pool.submit(record, "second")
    low.wait()
    assert _ORDER == ["first", "second", "low"]
    pool.wait_all([first, second])
    pool.close()


def test_undispatchable_callable_falls_back_inline():
    """Closures cannot be re-imported by a worker: run inline, count."""
    stats = GodivaStats()
    pool = ProcessComputePool(4, stats=stats, spawn_procs=0)
    pool.start()
    task = pool.submit(lambda: 41 + 1)
    assert task.wait() == 42
    assert stats.compute_fallback_inline == 1
    pool.close()


def test_error_reraised_at_wait_inline():
    pool = ProcessComputePool(1)
    task = pool.submit(boom)
    with pytest.raises(ValueError, match="kernel exploded"):
        task.wait()
    pool.close()


def test_submit_after_close_raises():
    pool = ProcessComputePool(2, spawn_procs=0)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ComputePoolClosedError):
        pool.submit(add, 1, 2)


def test_close_cancels_queued_tasks():
    """Still-queued (never dispatched) tasks are cancelled at close,
    exactly like the thread pool's."""
    pool = ProcessComputePool(4, spawn_procs=0)
    pool.start()
    tasks = [pool.submit(add, i, 1) for i in range(3)]
    pool.close()
    for task in tasks:
        with pytest.raises(ComputePoolClosedError):
            task.wait()


def test_map_and_wait_all():
    pool = ProcessComputePool(4, spawn_procs=0)
    pool.start()
    results = pool.map(total, [np.full((4,), v, dtype=np.float64)
                               for v in (1.0, 2.0, 3.0)])
    assert results == [4.0, 8.0, 12.0]
    pool.close()


# ----------------------------------------------------------------------
# Real worker processes (fork and spawn)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("start_method", START_METHODS)
def test_workers_roundtrip_tokens(start_method):
    """Tokenized inputs reach workers zero-copy; results come back
    correct, read-only, and every segment is unlinked at close."""
    stats = GodivaStats()
    pool = ProcessComputePool(
        2, stats=stats, start_method=start_method, spawn_procs=2,
    )
    pool.start()
    prefix = pool.shm_prefix
    arrays = [np.random.default_rng(seed).normal(size=SHAPE)
              for seed in range(4)]
    tasks = [pool.submit(double, a) for a in arrays]
    for task, array in zip(tasks, arrays):
        out = task.wait()
        np.testing.assert_array_equal(out, array * 2.0)
        assert not out.flags.writeable
        task.release()
    assert stats.compute_dispatches == 4
    assert stats.compute_fallback_inline == 0
    assert stats.compute_token_bytes >= 4 * arrays[0].nbytes
    pool.close()
    assert _shm_entries(prefix) == []


@pytest.mark.parametrize("start_method", START_METHODS)
def test_worker_error_reraised(start_method):
    pool = ProcessComputePool(
        2, start_method=start_method, spawn_procs=1,
    )
    pool.start()
    task = pool.submit(boom)
    with pytest.raises(ValueError, match="kernel exploded"):
        task.wait()
    pool.close()
    assert _shm_entries(pool.shm_prefix) == []


def test_share_reuses_sealed_arena_buffer():
    """share() over a pool arena locates sealed buffers zero-copy —
    no staging copy is ever made for them."""
    arena = SharedMemoryArena(name_prefix="t-cp-share")
    buf = arena.allocate(dtype=np.float64, shape=SHAPE)
    buf[...] = 7.5
    arena.seal(buf)
    pool = ProcessComputePool(2, share_arena=arena, spawn_procs=2,
                              start_method="fork")
    pool.start()
    shared = pool.share(buf)
    assert isinstance(shared, SharedInput)
    tasks = [pool.submit(total, shared) for _ in range(3)]
    for task in tasks:
        assert task.wait() == pytest.approx(7.5 * buf.size)
    assert shared.located and shared.staged is None
    pool.close()
    assert _shm_entries(pool.shm_prefix) == []
    arena.close()


def test_share_is_identity_when_serial():
    pool = ProcessComputePool(1)
    array = np.ones(8)
    assert pool.share(array) is array
    pool.close()


def test_worker_killed_mid_task_is_rescued(tmp_path):
    """SIGKILL a worker mid-task: the collector reaps it, re-runs the
    in-flight task inline, and sweeps the dead worker's segments."""
    marker_dir = str(tmp_path)
    pool = ProcessComputePool(2, start_method="fork", spawn_procs=1)
    pool.start()
    task = pool.submit(wait_for_flag, marker_dir, 2.0)
    deadline = time.monotonic() + 10.0
    while not any(n.startswith("started-")
                  for n in os.listdir(marker_dir)):
        assert time.monotonic() < deadline, "worker never started task"
        time.sleep(0.01)
    victim = pool.procs[0]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(5.0)
    # Now let the inline re-run terminate immediately.
    with open(os.path.join(marker_dir, "stop"), "w") as f:
        f.write("x")
    assert task.wait() == 6.0
    pool.close()
    assert _shm_entries(pool.shm_prefix) == []


def test_sweep_shm_prefix_removes_orphans():
    """The crash-cleanup helper unlinks exactly the named segments."""
    from multiprocessing import shared_memory

    # Simulate a crashed owner: a segment nobody will ever unlink.
    orphan = shared_memory.SharedMemory(
        create=True, size=4096, name="t-cp-orphan-seg",
    )
    orphan.close()
    assert _shm_entries("t-cp-orphan")
    assert sweep_shm_prefix("t-cp-orphan") >= 1
    assert _shm_entries("t-cp-orphan") == []


def test_stats_integrate_into_gbo_snapshot():
    """The new counters ride the GodivaStats snapshot machinery."""
    stats = GodivaStats()
    snapshot = stats.snapshot()
    for key in ("compute_dispatches", "compute_fallback_inline",
                "compute_token_bytes", "compute_result_token_bytes"):
        assert key in snapshot
