"""The processing pipeline over an in-memory SnapshotData stub."""

import numpy as np
import pytest

from repro.gen.quantities import node_fields, element_fields
from repro.gen.tetmesh import structured_tet_block
from repro.viz.camera import Camera
from repro.viz.gops import GraphicsOp, GraphicsOps
from repro.viz.pipeline import (
    Pipeline,
    SnapshotData,
    field_components,
    is_element_field,
    scalarize,
)


class StubData(SnapshotData):
    """Two unit-cube blocks with analytic fields; counts accesses."""

    def __init__(self):
        self.mesh = structured_tet_block(3, 3, 3)
        self.calls = {"coords": 0, "conn": 0, "field": 0}
        self.ops_seen = []

    def begin_op(self, op):
        self.ops_seen.append(op.field)

    def block_ids(self):
        return ["block_0000", "block_0001"]

    def coords(self, block_id):
        self.calls["coords"] += 1
        offset = 0.0 if block_id.endswith("0") else 2.0
        nodes = self.mesh.nodes.copy()
        nodes[:, 0] += offset
        return nodes

    def connectivity(self, block_id):
        self.calls["conn"] += 1
        return self.mesh.tets

    def field(self, block_id, name):
        self.calls["field"] += 1
        coords = self.coords(block_id)
        self.calls["coords"] -= 1   # internal reuse, not an access
        if is_element_field(name):
            centroids = coords[self.mesh.tets].mean(axis=1)
            return element_fields(centroids, 1e-4)[name]
        return node_fields(coords, 1e-4)[name]


class TestHelpers:
    def test_field_components(self):
        assert field_components("velocity") == 3
        assert field_components("temperature") == 1
        assert field_components("plastic_strain") == 1
        with pytest.raises(KeyError):
            field_components("ghost")

    def test_is_element_field(self):
        assert is_element_field("plastic_strain")
        assert not is_element_field("velocity")
        with pytest.raises(KeyError):
            is_element_field("ghost")

    def test_scalarize_scalar_passthrough(self):
        values = np.arange(4.0)
        assert np.array_equal(scalarize(values, None), values)

    def test_scalarize_magnitude(self):
        vec = np.array([[3.0, 4.0, 0.0]])
        assert scalarize(vec, "magnitude")[0] == pytest.approx(5.0)
        assert scalarize(vec, None)[0] == pytest.approx(5.0)

    def test_scalarize_components(self):
        vec = np.array([[1.0, 2.0, 3.0]])
        assert scalarize(vec, "x")[0] == 1.0
        assert scalarize(vec, "y")[0] == 2.0
        assert scalarize(vec, "z")[0] == 3.0


class TestPipeline:
    def test_boundary_op(self):
        data = StubData()
        pipeline = Pipeline(GraphicsOps([
            GraphicsOp("boundary", "velocity", component="magnitude"),
        ]), camera=Camera.fit_bounds((0, 0, 0), (3, 1, 1)))
        result = pipeline.process(data)
        # 12 n^2 boundary triangles per block at n=3.
        assert result.triangles == 2 * 12 * 9
        assert result.image is not None

    def test_isosurface_and_slice_ops(self):
        data = StubData()
        pipeline = Pipeline(GraphicsOps([
            GraphicsOp("isosurface", "temperature", isovalue=600.0),
            GraphicsOp("slice", "ave_stress",
                       origin=(0.5, 0.5, 0.5), normal=(0, 0, 1)),
        ]), render=False)
        result = pipeline.process(data)
        assert result.image is None
        assert len(result.op_triangles) == 2
        assert result.op_triangles[1] > 0   # slice always cuts

    def test_element_field_contoured_via_node_average(self):
        data = StubData()
        pipeline = Pipeline(GraphicsOps([
            GraphicsOp("slice", "plastic_strain",
                       origin=(0.5, 0.5, 0.5), normal=(0, 0, 1)),
        ]), render=False)
        result = pipeline.process(data)
        assert result.op_triangles[0] > 0

    def test_begin_op_called_per_op(self):
        data = StubData()
        pipeline = Pipeline(GraphicsOps([
            GraphicsOp("boundary", "velocity"),
            GraphicsOp("boundary", "temperature"),
        ]), render=False)
        pipeline.process(data)
        assert data.ops_seen == ["velocity", "temperature"]

    def test_access_counts_op_major(self):
        """The pipeline asks for mesh + field per (op, block)."""
        data = StubData()
        pipeline = Pipeline(GraphicsOps([
            GraphicsOp("boundary", "velocity"),
            GraphicsOp("boundary", "temperature"),
        ]), render=False)
        pipeline.process(data)
        assert data.calls["coords"] == 4   # 2 ops x 2 blocks
        assert data.calls["field"] == 4

    def test_base_class_is_abstract(self):
        data = SnapshotData()
        data.begin_op(None)   # default hook is a no-op
        with pytest.raises(NotImplementedError):
            data.block_ids()
        with pytest.raises(NotImplementedError):
            data.coords("b")
        with pytest.raises(NotImplementedError):
            data.connectivity("b")
        with pytest.raises(NotImplementedError):
            data.field("b", "f")


def test_pipeline_colorbar_overlay():
    data = StubData()
    gops = GraphicsOps([GraphicsOp("boundary", "velocity")])
    camera = Camera.fit_bounds((0, 0, 0), (3, 1, 1))
    plain = Pipeline(gops, camera=camera).process(data).image
    with_bar = Pipeline(
        gops, camera=camera, colorbar=True
    ).process(StubData()).image
    assert not np.array_equal(plain, with_bar)
    # Only the right edge differs.
    assert np.array_equal(plain[:, :200], with_bar[:, :200])
