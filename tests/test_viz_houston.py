"""Apollo/Houston client-server parallel mode."""

import numpy as np
import pytest

from repro.viz.houston import HoustonCluster, HoustonConfig


@pytest.fixture(scope="module")
def cluster_dataset(tmp_path_factory):
    from repro.gen.snapshot import SnapshotSpec, generate_dataset
    from repro.gen.titan import TitanConfig

    directory = str(tmp_path_factory.mktemp("houston"))
    return generate_dataset(
        SnapshotSpec(config=TitanConfig.scaled(0.15), n_steps=3,
                     files_per_snapshot=2),
        directory,
    )


def make_cluster(dataset, n_servers=2, **kwargs):
    return HoustonCluster(HoustonConfig(
        data_dir=dataset.directory,
        test="simple",
        n_servers=n_servers,
        **kwargs,
    ))


class TestHouston:
    def test_view_renders(self, cluster_dataset):
        with make_cluster(cluster_dataset) as cluster:
            image = cluster.view(0)
            assert image.ndim == 3
            assert image.dtype == np.uint8
            # Something got drawn.
            assert len(np.unique(image.reshape(-1, 3), axis=0)) > 1
            assert cluster.views == 1
            assert cluster.total_bytes_read > 0

    def test_block_partition_covers_everything(self, cluster_dataset):
        with make_cluster(cluster_dataset, n_servers=3) as cluster:
            flat = [
                b for part in cluster.partitions for b in part
            ]
            assert sorted(flat) == sorted(cluster_dataset.block_ids)

    def test_matches_serial_apollo_image(self, cluster_dataset):
        """The distributed render equals the single-process one."""
        from repro.viz.apollo import ApolloSession

        with make_cluster(cluster_dataset, n_servers=2) as cluster:
            parallel_image = cluster.view(1)
        with ApolloSession(
            cluster_dataset.directory, test="simple",
            mem_mb=64.0, render=True,
        ) as session:
            serial_image = session.view(1)
        assert np.array_equal(parallel_image, serial_image)

    def test_revisit_hits_server_caches(self, cluster_dataset):
        with make_cluster(cluster_dataset) as cluster:
            cluster.view(0)
            bytes_after_first = cluster.total_bytes_read
            cluster.view(0)   # revisit: every server hits its cache
            assert cluster.total_bytes_read == bytes_after_first
            for stats in cluster.server_stats():
                assert stats["wait_hits"] >= 1

    def test_out_of_range(self, cluster_dataset):
        with make_cluster(cluster_dataset) as cluster:
            with pytest.raises(ValueError):
                cluster.view(99)

    def test_servers_see_disjoint_bytes(self, cluster_dataset):
        """Each server reads only its partition: the cluster total is
        below a full single-session load (shared per-file metadata is
        read by every server, so slightly above a perfect split)."""
        from repro.viz.apollo import ApolloSession

        with ApolloSession(
            cluster_dataset.directory, test="simple",
            mem_mb=64.0, render=False,
        ) as session:
            session.view(0)
            serial_bytes = session.stats.bytes_read
        with make_cluster(cluster_dataset, n_servers=2) as cluster:
            cluster.view(0)
            assert cluster.total_bytes_read < 1.5 * serial_bytes
            assert cluster.total_bytes_read > 0.9 * serial_bytes
