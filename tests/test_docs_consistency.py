"""Documentation consistency: the docs track the code.

Cheap guards that keep README/DESIGN/EXPERIMENTS/API honest as the code
evolves — every promised module exists, every public name is documented,
every bench the experiment index references is present.
"""

import os
import re

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name: str) -> str:
    with open(os.path.join(ROOT, name)) as f:
        return f.read()


class TestReadme:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart code block must execute verbatim."""
        readme = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README lost its python quickstart"
        exec_globals = {}
        exec(blocks[0], exec_globals)  # raises on breakage

    def test_examples_listed_exist(self):
        readme = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert os.path.exists(
                os.path.join(ROOT, "examples", match)
            ), match

    def test_cli_names_exist(self):
        import tomllib

        with open(os.path.join(ROOT, "pyproject.toml"), "rb") as f:
            scripts = tomllib.load(f)["project"]["scripts"]
        readme = read("README.md")
        for name in ("godiva-gen", "godiva-voyager"):
            assert name in scripts
            assert name in readme


class TestDesign:
    def test_experiment_index_benches_exist(self):
        design = read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/(bench_\w+\.py)",
                                    design)):
            assert os.path.exists(
                os.path.join(ROOT, "benchmarks", match)
            ), match

    def test_inventory_packages_exist(self):
        design = read("DESIGN.md")
        for match in set(re.findall(r"`repro\.(\w+)`", design)):
            assert os.path.isdir(
                os.path.join(ROOT, "src", "repro", match)
            ) or os.path.exists(
                os.path.join(ROOT, "src", "repro", f"{match}.py")
            ), match

    def test_paper_match_confirmed(self):
        assert "matches the title/venue/authors" in read("DESIGN.md")

    def test_lock_table_matches_registry(self):
        """DESIGN's lock-ownership table and the machine-readable
        registry (``repro.analysis.lockfacts.LOCK_TABLE``) never drift:
        same roles, same classes, same guarded fields, in order."""
        from repro.analysis.lockfacts import (
            LOCK_TABLE,
            parse_design_lock_table,
        )

        parsed = parse_design_lock_table(read("DESIGN.md"))
        expected = {
            role: {
                cls: list(fields)
                for cls, fields in entry["classes"].items()
                # Field-less classes (contract-only members of a role)
                # have nothing to list in the table's fields column.
                if fields
            }
            for role, entry in LOCK_TABLE.items()
        }
        assert parsed == expected


class TestExperiments:
    def test_every_bench_documented(self):
        """EXPERIMENTS.md references every benchmark module."""
        experiments = read("EXPERIMENTS.md")
        benches = [
            name for name in os.listdir(
                os.path.join(ROOT, "benchmarks")
            )
            if name.startswith("bench_") and name.endswith(".py")
        ]
        undocumented = [
            name for name in benches
            if name not in experiments and name != "bench_core_micro.py"
        ]
        assert not undocumented, undocumented


class TestApiDoc:
    def test_public_names_documented(self):
        import repro

        api = read(os.path.join("docs", "API.md"))
        missing = [
            name for name in repro.__all__
            if name not in api and name != "__version__"
        ]
        assert not missing, missing

    def test_documented_modules_import(self):
        import importlib

        api = read(os.path.join("docs", "API.md"))
        for match in set(re.findall(r"`repro(\.\w+)+`", api)):
            pass  # group captures only the last segment; re-scan below
        for module in set(re.findall(r"`(repro(?:\.\w+)+)`", api)):
            # Only module-looking names (lowercase path, no call syntax).
            if any(part[0].isupper() for part in module.split(".")):
                continue
            importlib.import_module(module)
