"""2-D fluid-block rendering (the Table 1 dataset family)."""

import numpy as np
import pytest

from repro.gen.structured_fluid import (
    fluid_block_arrays,
    make_fluid_block_record,
)
from repro.viz.fluid2d import (
    render_fluid_blocks,
    render_from_gbo,
    sample_block,
)


class TestSampleBlock:
    def test_uniform_grid_exact(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 1.0])
        cells = np.array([10.0, 20.0])  # x-major: cell(0,0), cell(1,0)
        values, mask = sample_block(x, y, cells, width=4, height=2)
        assert mask.all()
        assert np.array_equal(values[0], [10, 10, 20, 20])

    def test_y_axis_points_up(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0, 2.0])
        cells = np.array([5.0, 9.0])   # (0,0)=5 lower, (0,1)=9 upper
        values, _mask = sample_block(x, y, cells, width=1, height=2)
        assert values[0, 0] == 9.0     # top pixel row = upper cell
        assert values[1, 0] == 5.0

    def test_mask_outside_block(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        values, mask = sample_block(
            x, y, np.array([3.0]), width=4, height=4,
            bounds=(0.0, 2.0, 0.0, 2.0),
        )
        assert mask[:, :2].sum() == 4  # left-bottom quadrant covered
        assert not mask[:, 2:].any()

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sample_block(np.array([0.0, 1.0]), np.array([0.0, 1.0]),
                         np.array([1.0, 2.0]), 2, 2)

    def test_nonuniform_edges(self):
        x = np.array([0.0, 0.1, 2.0])   # tiny first cell
        y = np.array([0.0, 1.0])
        cells = np.array([1.0, 2.0])
        values, _ = sample_block(x, y, cells, width=10, height=1)
        # Nearly every pixel lands in the wide second cell.
        assert (values == 2.0).sum() >= 9


class TestRenderFluid:
    def test_render_single_block(self):
        arrays = fluid_block_arrays()
        image = render_fluid_blocks([arrays], field="pressure",
                                    width=80, height=60)
        assert image.shape == (60, 80, 3)
        assert image.dtype == np.uint8
        assert len(np.unique(image.reshape(-1, 3), axis=0)) > 4

    def test_render_multiblock_spans_union(self):
        blocks = [
            fluid_block_arrays(block_index=1),
            fluid_block_arrays(block_index=4),
        ]
        image = render_fluid_blocks(blocks, field="temperature",
                                    width=120, height=40,
                                    colormap="heat")
        background = np.array([20, 20, 31], dtype=np.uint8)
        covered = (image != background).any(axis=2)
        # Both ends of the frame covered, gap in the middle dark.
        assert covered[:, 0].any()
        assert covered[:, -1].any()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_fluid_blocks([])

    def test_missing_field_rejected(self):
        arrays = fluid_block_arrays()
        del arrays["pressure"]
        with pytest.raises(ValueError, match="missing"):
            render_fluid_blocks([arrays], field="pressure")

    def test_fixed_range_stability(self):
        arrays = fluid_block_arrays()
        a = render_fluid_blocks([arrays], vmin=0.0, vmax=2e5,
                                width=40, height=30)
        b = render_fluid_blocks([arrays], vmin=0.0, vmax=2e5,
                                width=40, height=30)
        assert np.array_equal(a, b)


class TestRenderFromGbo:
    def test_round_trip_through_database(self, gbo):
        for index in (1, 2):
            make_fluid_block_record(gbo, block_index=index, t=25e-6)
        keys = [
            (b"block_0001$", b"0.000025$"),
            (b"block_0002$", b"0.000025$"),
        ]
        via_gbo = render_from_gbo(gbo, keys, field="pressure",
                                  width=100, height=50)
        direct = render_fluid_blocks(
            [fluid_block_arrays(block_index=1),
             fluid_block_arrays(block_index=2)],
            field="pressure", width=100, height=50,
        )
        assert np.array_equal(via_gbo, direct)
