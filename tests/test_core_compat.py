"""The paper's camelCase API aliases."""

import pytest

from repro.core.compat import PAPER_ALIASES, PaperGBO, install_paper_aliases
from repro.core.types import UNKNOWN, DataType

# The aliases deprecation-warn by design; these tests exercise them on
# purpose (test_aliases_emit_deprecation_warnings asserts the warning).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_alias_table_covers_figure1_interfaces():
    # The three interface groups of Figure 1 plus schema/memory calls.
    for name in ("defineField", "defineRecord", "insertField",
                 "commitRecordType", "newRecord", "allocFieldBuffer",
                 "commitRecord", "getFieldBuffer", "getFieldBufferSize",
                 "addUnit", "readUnit", "waitUnit", "finishUnit",
                 "deleteUnit", "setMemSpace"):
        assert name in PAPER_ALIASES


def test_paper_gbo_speaks_camel_case():
    """The paper's sample code, nearly verbatim."""
    godiva = PaperGBO(400)
    try:
        godiva.defineField("block id", DataType.STRING, 11)
        godiva.defineField("time-step id", DataType.STRING, 9)
        godiva.defineField("x coordinates", DataType.DOUBLE, UNKNOWN)
        godiva.defineField("x coordinates", DataType.DOUBLE, UNKNOWN)
        godiva.defineField("pressure", DataType.DOUBLE, UNKNOWN)
        godiva.defineField("temperature", DataType.DOUBLE, UNKNOWN)

        godiva.defineRecord("fluid", 2)  # has 2 key fields
        godiva.insertField("fluid", "block id", True)
        godiva.insertField("fluid", "time-step id", True)
        godiva.insertField("fluid", "x coordinates", False)
        godiva.insertField("fluid", "pressure", False)
        godiva.insertField("fluid", "temperature", False)
        godiva.commitRecordType("fluid")

        record = godiva.newRecord("fluid")
        record.field("block id").write(b"block_0003$")
        record.field("time-step id").write(b"0.000075$")
        godiva.allocFieldBuffer(record, "pressure", 80_000)
        godiva.commitRecord(record)

        # "give me the address of the pressure data buffer of the block
        # with ID block_0003 from the time-step with ID 0.000075"
        buf = godiva.getFieldBuffer(
            "fluid", "pressure", [b"block_0003$", b"0.000075$"]
        )
        assert len(buf) == 10_000
        assert godiva.getFieldBufferSize(
            "fluid", "pressure", [b"block_0003$", b"0.000075$"]
        ) == 80_000

        godiva.setMemSpace(300)
    finally:
        godiva.close()


def test_paper_unit_interfaces():
    def read_file(gbo, unit_name):
        gbo.defineField("id", DataType.STRING, 8)
        if not gbo.has_record_type("rec"):
            gbo.defineRecord("rec", 1)
            gbo.insertField("rec", "id", True)
            gbo.commitRecordType("rec")
        record = gbo.newRecord("rec")
        record.field("id").write(unit_name.rjust(8)[-8:].encode())
        gbo.commitRecord(record)

    godiva = PaperGBO(400)
    try:
        godiva.addUnit("fluid_file1", read_file)
        godiva.addUnit("fluid_file2", read_file)
        godiva.waitUnit("fluid_file1")
        godiva.deleteUnit("fluid_file1")
        godiva.waitUnit("fluid_file2")
        godiva.finishUnit("fluid_file2")
        godiva.readUnit("fluid_file3", read_file)
    finally:
        godiva.close()


def test_install_on_custom_subclass():
    from repro.core.database import GBO

    class MyGbo(GBO):
        pass

    install_paper_aliases(MyGbo)
    assert callable(MyGbo.addUnit)
    assert MyGbo.addUnit.__wrapped__ is MyGbo.add_unit


def test_aliases_emit_deprecation_warnings():
    godiva = PaperGBO(4)
    try:
        with pytest.warns(DeprecationWarning, match="defineField"):
            godiva.defineField("f", DataType.INT32, 4)
        with pytest.warns(DeprecationWarning, match="setMemSpace"):
            godiva.setMemSpace(8)
        assert godiva.mem_budget_bytes == 8 * 1024 * 1024
    finally:
        godiva.close()


def test_paper_gbo_positional_number_means_megabytes():
    godiva = PaperGBO(400)
    try:
        assert godiva.mem_budget_bytes == 400 * 1024 * 1024
    finally:
        godiva.close()
    # Modern spellings pass through unchanged.
    godiva = PaperGBO("16MB", io_workers=2)
    try:
        assert godiva.mem_budget_bytes == 16 * 1024 * 1024
        assert godiva.io_workers == 2
    finally:
        godiva.close()


def test_cancel_unit_alias_present():
    assert PAPER_ALIASES["cancelUnit"] == "cancel_unit"
    assert callable(PaperGBO.cancelUnit)
