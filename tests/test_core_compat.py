"""The paper's camelCase API names — now hard-error migration stubs.

PR 1-5 shipped the aliases as DeprecationWarning shims; the window is
closed: every camelCase call must raise
:class:`repro.errors.PaperAliasError` naming the snake_case
replacement, while the alias *table*, ``install_paper_aliases`` and
``PaperGBO``'s megabytes-positional constructor keep working so ported
code fails loudly (not silently) and codemods can be driven from the
table via the top-level ``repro.compat`` shim.
"""

import pytest

from repro.core.compat import PAPER_ALIASES, PaperGBO, install_paper_aliases
from repro.core.types import DataType
from repro.errors import PaperAliasError


def test_alias_table_covers_figure1_interfaces():
    # The three interface groups of Figure 1 plus schema/memory calls.
    for name in ("defineField", "defineRecord", "insertField",
                 "commitRecordType", "newRecord", "allocFieldBuffer",
                 "commitRecord", "getFieldBuffer", "getFieldBufferSize",
                 "addUnit", "readUnit", "waitUnit", "finishUnit",
                 "deleteUnit", "setMemSpace"):
        assert name in PAPER_ALIASES


def test_every_alias_raises_with_migration_message():
    godiva = PaperGBO(4)
    try:
        for paper_name, snake_name in PAPER_ALIASES.items():
            with pytest.raises(PaperAliasError) as excinfo:
                getattr(godiva, paper_name)()
            # The error must carry both the removed name and the
            # replacement, so the fix is copy-pasteable.
            assert paper_name in str(excinfo.value)
            assert snake_name in str(excinfo.value)
            assert "repro.compat" in str(excinfo.value)
    finally:
        godiva.close()


def test_alias_error_is_a_type_error():
    # Ports catching TypeError around duck-typed calls keep working.
    godiva = PaperGBO(4)
    try:
        with pytest.raises(TypeError):
            godiva.addUnit("u", lambda g, n: None)
    finally:
        godiva.close()


def test_snake_case_paper_sample_still_runs():
    """The paper's sample code, in the blessed snake_case spelling."""
    godiva = PaperGBO(400)
    try:
        godiva.define_field("block id", DataType.STRING, 11)
        godiva.define_field("pressure", DataType.DOUBLE)

        godiva.define_record("fluid", 1)
        godiva.insert_field("fluid", "block id", True)
        godiva.insert_field("fluid", "pressure", False)
        godiva.commit_record_type("fluid")

        record = godiva.new_record("fluid")
        record.field("block id").write(b"block_0003$")
        godiva.alloc_field_buffer(record, "pressure", 80_000)
        godiva.commit_record(record)

        buf = godiva.get_field_buffer("fluid", "pressure", [b"block_0003$"])
        assert len(buf) == 10_000
        godiva.set_mem_space(300)
    finally:
        godiva.close()


def test_install_on_custom_subclass():
    from repro.core.database import GBO

    class MyGbo(GBO):
        pass

    install_paper_aliases(MyGbo)
    assert callable(MyGbo.addUnit)
    # __wrapped__ still points at the replacement for tooling.
    assert MyGbo.addUnit.__wrapped__ is MyGbo.add_unit
    gbo = MyGbo(mem_mb=4)
    try:
        with pytest.raises(PaperAliasError, match="add_unit"):
            gbo.addUnit("u", lambda g, n: None)
    finally:
        gbo.close()


def test_paper_gbo_positional_number_means_megabytes():
    godiva = PaperGBO(400)
    try:
        assert godiva.mem_budget_bytes == 400 * 1024 * 1024
    finally:
        godiva.close()
    # Modern spellings pass through unchanged.
    godiva = PaperGBO("16MB", io_workers=2)
    try:
        assert godiva.mem_budget_bytes == 16 * 1024 * 1024
        assert godiva.io_workers == 2
    finally:
        godiva.close()


def test_cancel_unit_alias_present():
    assert PAPER_ALIASES["cancelUnit"] == "cancel_unit"
    assert callable(PaperGBO.cancelUnit)


def test_top_level_compat_shim_reexports():
    import repro.compat as compat

    assert compat.PAPER_ALIASES is PAPER_ALIASES
    assert compat.PaperGBO is PaperGBO
    assert compat.install_paper_aliases is install_paper_aliases
    assert compat.PaperAliasError is PaperAliasError
    assert set(compat.__all__) == {
        "PAPER_ALIASES", "PaperGBO", "PaperAliasError",
        "install_paper_aliases",
    }


def test_lint_alias_table_in_sync():
    # The linter mirrors the table without importing the library.
    from repro.analysis.lint import PAPER_ALIAS_NAMES

    assert PAPER_ALIAS_NAMES == frozenset(PAPER_ALIASES)
