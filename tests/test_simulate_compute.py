"""Simulator model of the compute plane (W1-style compute sweep).

The deterministic discrete-event model is what lets CI assert the
issue's >=3x process/4 bar on a single-core runner: the sweep runs on
a zero-contention four-core model host, the thread backend pays the
GIL serial fraction, the process backend only a dispatch overhead.
"""

import pytest

from repro.simulate import (
    ENGLE,
    PROCESS_DISPATCH_OVERHEAD,
    THREAD_GIL_FRACTION,
    ComputeSweepPoint,
    TestWorkload,
    compute_host,
    compute_sweep,
    simulate_voyager,
)
from repro.simulate.workload import IoProfile

#: Same shape as the P1 bench sweep: complex op-set, compute-heavy.
WORKLOAD = TestWorkload(
    test="complex",
    n_snapshots=32,
    original=IoProfile(120e6, 600, 60, 480, 48),
    godiva=IoProfile(20e6, 100, 10, 80, 8),
    compute_s=0.8,
)


def _point(points, backend, workers):
    for p in points:
        if p.backend == backend and p.workers == workers:
            return p
    raise AssertionError(f"no sweep point {backend}/{workers}")


def test_defaults_unchanged():
    """compute_workers=1 is event-for-event the pre-compute-plane run."""
    base = simulate_voyager(ENGLE, WORKLOAD, "G")
    explicit = simulate_voyager(ENGLE, WORKLOAD, "G",
                                compute_workers=1,
                                compute_backend="process")
    assert explicit.total_s == base.total_s
    assert explicit.visible_io_s == base.visible_io_s
    assert explicit.computation_s == base.computation_s


def test_result_carries_compute_knobs():
    run = simulate_voyager(compute_host(4), WORKLOAD, "G",
                           compute_workers=4,
                           compute_backend="process")
    assert run.compute_workers == 4
    assert run.compute_backend == "process"


def test_compute_args_validated():
    with pytest.raises(ValueError):
        simulate_voyager(ENGLE, WORKLOAD, "G", compute_workers=0)
    with pytest.raises(ValueError):
        simulate_voyager(ENGLE, WORKLOAD, "G", compute_backend="fibers")


def test_compute_host_is_zero_contention():
    machine = compute_host(4)
    assert machine.n_cpus == 4
    assert machine.smp_contention == 0.0
    assert compute_host(8).n_cpus == 8


def test_thread_backend_pays_gil_fraction():
    """Amdahl check: wall == f*C + (1-f)*C/W on the contention-free
    host, so the model's speedup is analytic, not tuned."""
    points = compute_sweep(WORKLOAD, backends=("thread",))
    base = _point(points, "thread", 1)
    four = _point(points, "thread", 4)
    f = THREAD_GIL_FRACTION
    expected = 1.0 / (f + (1.0 - f) / 4.0)
    assert four.speedup == pytest.approx(expected, rel=1e-6)
    assert base.speedup == pytest.approx(1.0)


def test_process_backend_pays_dispatch_overhead():
    points = compute_sweep(WORKLOAD, backends=("process",))
    four = _point(points, "process", 4)
    expected = 4.0 / (1.0 + PROCESS_DISPATCH_OVERHEAD)
    assert four.speedup == pytest.approx(expected, rel=1e-6)


def test_sweep_meets_issue_bar():
    """The committed acceptance bar: process/4 >= 3x and it beats the
    GIL-bound thread backend at the same width."""
    points = compute_sweep(WORKLOAD)
    process4 = _point(points, "process", 4)
    thread4 = _point(points, "thread", 4)
    assert process4.speedup >= 3.0
    assert thread4.speedup < process4.speedup
    assert isinstance(process4, ComputeSweepPoint)


def test_sweep_speedups_monotone_in_workers():
    points = compute_sweep(WORKLOAD, workers=(1, 2, 4))
    for backend in ("thread", "process"):
        speedups = [_point(points, backend, w).speedup
                    for w in (1, 2, 4)]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)
