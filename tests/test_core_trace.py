"""Unit-lifecycle tracing through the GBO event hook."""

import pytest

from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.trace import UnitTimeline, UnitTracer
from repro.core.types import DataType

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 8, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


def reader(nbytes=400):
    def read_fn(gbo, unit_name):
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(8)[:8].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        gbo.commit_record(record)

    return read_fn


class TestUnitTimeline:
    def test_pairs_and_counters(self):
        timeline = UnitTimeline("u", events=[
            ("added", 0.0),
            ("read_started", 1.0),
            ("loaded", 3.0),
            ("finished", 4.0),
            ("evicted", 10.0),
            ("added", 11.0),
            ("read_started", 11.5),
            ("loaded", 12.5),
            ("deleted", 20.0),
        ])
        assert timeline.queued_seconds == pytest.approx(1.5)
        assert timeline.read_seconds == pytest.approx(3.0)
        assert timeline.loads == 2
        assert timeline.evictions == 1
        assert timeline.resident_seconds() == pytest.approx(
            (10.0 - 3.0) + (20.0 - 12.5)
        )
        assert not timeline.failed

    def test_still_resident_uses_now(self):
        timeline = UnitTimeline("u", events=[
            ("added", 0.0), ("read_started", 0.0), ("loaded", 2.0),
        ])
        assert timeline.resident_seconds(now=5.0) == pytest.approx(3.0)


class TestUnitTracer:
    def test_rejects_unknown_event(self):
        tracer = UnitTracer()
        with pytest.raises(ValueError):
            tracer("teleported", "u", 0.0)

    def test_unknown_unit_lookup(self):
        with pytest.raises(KeyError):
            UnitTracer().timeline("ghost")

    def test_full_lifecycle_through_gbo(self):
        ticks = {"now": 0.0}
        tracer = UnitTracer()
        gbo = GBO(mem_mb=8, background_io=False,
                  clock=lambda: ticks["now"], unit_event_hook=tracer)

        def timed_read(g, name):
            ticks["now"] += 2.0
            reader()(g, name)

        gbo.add_unit("u0", timed_read)
        ticks["now"] += 1.0     # sits queued for 1 s
        gbo.wait_unit("u0")
        ticks["now"] += 5.0     # processed for 5 s
        gbo.finish_unit("u0")
        gbo.delete_unit("u0")
        gbo.close()

        timeline = tracer.timeline("u0")
        names = [name for name, _t in timeline.events]
        assert names == [
            "added", "read_started", "loaded", "finished", "deleted"
        ]
        assert timeline.queued_seconds == pytest.approx(1.0)
        assert timeline.read_seconds == pytest.approx(2.0)
        assert timeline.resident_seconds() == pytest.approx(5.0)

    def test_eviction_and_reload_events(self):
        tracer = UnitTracer()
        with GBO(mem_bytes=5000, background_io=False,
                 unit_event_hook=tracer) as gbo:
            for i in range(4):
                gbo.add_unit(f"u{i}", reader(nbytes=2000))
                gbo.wait_unit(f"u{i}")
                gbo.finish_unit(f"u{i}")
            gbo.wait_unit("u0")   # reload after eviction
            names = [n for n, _t in tracer.timeline("u0").events]
            assert "evicted" in names
            assert names.count("loaded") == 2
            assert tracer.timeline("u0").evictions == 1

    def test_failed_event(self):
        tracer = UnitTracer()
        from repro.errors import ReadFunctionError

        with GBO(mem_mb=8, background_io=False,
                 unit_event_hook=tracer) as gbo:
            def broken(g, name):
                raise IOError("nope")

            with pytest.raises(ReadFunctionError):
                gbo.read_unit("bad", broken)
            assert tracer.timeline("bad").failed

    def test_totals_and_report(self):
        tracer = UnitTracer()
        with GBO(mem_mb=8, background_io=False,
                 unit_event_hook=tracer) as gbo:
            for i in range(3):
                gbo.add_unit(f"u{i}", reader())
                gbo.wait_unit(f"u{i}")
                gbo.delete_unit(f"u{i}")
        totals = tracer.totals()
        assert totals["units"] == 3
        assert totals["loads"] == 3
        report = tracer.report()
        assert len(report) == 3
        assert report[0].startswith("u0:")

    def test_tracer_with_background_thread(self):
        tracer = UnitTracer()
        with GBO(mem_mb=8, unit_event_hook=tracer) as gbo:
            for i in range(3):
                gbo.add_unit(f"u{i}", reader())
            for i in range(3):
                gbo.wait_unit(f"u{i}")
                gbo.delete_unit(f"u{i}")
        assert tracer.totals()["loads"] == 3
        for name in ("u0", "u1", "u2"):
            events = [n for n, _t in tracer.timeline(name).events]
            assert events[0] == "added"
            assert "loaded" in events
            assert events[-1] == "deleted"
