"""Arena seam: cross-process view discipline, leaks, byte-identity."""

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.arena import (
    AttachedBuffer,
    HeapArena,
    SharedMemoryArena,
    attach_token,
)
from repro.core.database import GBO
from repro.errors import ArenaError
from repro.io.readers import (
    make_snapshot_read_fn,
    snapshot_unit_name,
    solid_schema,
)
from repro.viz.camera import Camera
from repro.viz.gops import test_gops as make_test_gops
from repro.viz.pipeline import Pipeline
from repro.viz.voyager import GodivaSnapshotData

pytestmark = pytest.mark.races


def _shm_entries():
    return set(glob.glob("/dev/shm/godiva-*"))


def _child_try_write(token, out_q):
    """Spawn target: attach a sealed buffer and try to mutate it."""
    buf = attach_token(token)
    try:
        try:
            buf.array[0] = 99
            out_q.put("wrote")
        except (ValueError, TypeError) as err:
            out_q.put(type(err).__name__)
        try:
            buf.array.flags.writeable = True
            out_q.put("flipped")
        except ValueError:
            out_q.put("flip-blocked")
    finally:
        buf.close()


class TestCrossProcessDiscipline:
    def test_child_mutation_raises(self):
        """A sealed buffer attached in another process is read-only:
        writes raise there, and the flag cannot be flipped back."""
        arena = SharedMemoryArena(name_prefix="godiva-xproc")
        try:
            array = arena.allocate(dtype=np.float32, shape=(16,))
            array[:] = np.arange(16, dtype=np.float32)
            arena.seal(array)
            token = arena.export_token(array)

            ctx = multiprocessing.get_context("spawn")
            out_q = ctx.Queue()
            child = ctx.Process(target=_child_try_write,
                                args=(token, out_q))
            child.start()
            verdicts = [out_q.get(timeout=30), out_q.get(timeout=30)]
            child.join(timeout=30)
            assert child.exitcode == 0
            assert verdicts == ["ValueError", "flip-blocked"]
            # The parent's sealed bytes were never touched.
            assert array[0] == 0.0
        finally:
            arena.close()

    def test_export_requires_seal(self):
        arena = SharedMemoryArena(name_prefix="godiva-seal")
        try:
            array = arena.allocate(nbytes=64)
            with pytest.raises(ArenaError):
                arena.export_token(array)
        finally:
            arena.close()

    def test_heap_arena_tokens_not_shareable(self):
        arena = HeapArena()
        array = arena.allocate(nbytes=64)
        arena.seal(array)
        with pytest.raises(ArenaError):
            arena.export_token(array)


class TestLeakFreedom:
    def test_attach_detach_leak_free(self):
        """Repeated attach/detach cycles leave /dev/shm exactly as
        found once the creating arena closes."""
        before = _shm_entries()
        arena = SharedMemoryArena(name_prefix="godiva-leak")
        array = arena.allocate(dtype=np.uint8, shape=(1024,))
        array[:] = 7
        arena.seal(array)
        token = arena.export_token(array)
        for _ in range(20):
            buf = attach_token(token)
            assert isinstance(buf, AttachedBuffer)
            assert buf.array[0] == 7
            assert not buf.array.flags.writeable
            buf.close()
        arena.release(array)
        arena.close()
        assert _shm_entries() == before

    def test_close_is_idempotent(self):
        before = _shm_entries()
        arena = SharedMemoryArena(name_prefix="godiva-idem")
        arena.allocate(nbytes=128)
        arena.close()
        arena.close()
        assert _shm_entries() == before


def _render_complex(dataset, gbo):
    """The serial complex-test G loop over every snapshot."""
    gops = make_test_gops("complex")
    camera = Camera.fit_bounds((-1.7, -1.7, 0.0), (1.7, 1.7, 10.0))
    pipeline = Pipeline(gops, camera=camera, render=True)
    read_fn = make_snapshot_read_fn(dataset, fields=gops.fields_used())
    solid_schema().ensure(gbo)
    steps = range(len(dataset.snapshots))
    for step in steps:
        gbo.add_unit(snapshot_unit_name(step), read_fn)
    frames = {}
    triangles = 0
    for step in steps:
        unit = snapshot_unit_name(step)
        gbo.wait_unit(unit)
        plan = pipeline.begin(GodivaSnapshotData(
            gbo, dataset.snapshots[step].tsid, dataset.block_ids,
        ))
        result = pipeline.finish(plan)
        frames[step] = result.image.tobytes()
        triangles += result.triangles
        gbo.delete_unit(unit)
    gbo.close()
    return frames, triangles


class TestHeapArenaByteIdentity:
    def test_explicit_heap_arena_matches_default(self, small_dataset):
        """The arena seam is byte-transparent: an engine running over
        an explicit HeapArena renders the complex op-set exactly as
        the default engine does."""
        default_frames, default_tris = _render_complex(
            small_dataset, GBO(mem_mb=64.0)
        )
        arena_frames, arena_tris = _render_complex(
            small_dataset, GBO(mem_mb=64.0, arena=HeapArena())
        )
        assert arena_tris == default_tris
        assert arena_frames == default_frames

    def test_shared_memory_arena_matches_default(self, small_dataset):
        """And so is the shared-memory arena, in-process."""
        before = _shm_entries()
        default_frames, _tris = _render_complex(
            small_dataset, GBO(mem_mb=64.0)
        )
        arena = SharedMemoryArena(name_prefix="godiva-ident")
        shm_frames, _tris = _render_complex(
            small_dataset, GBO(mem_mb=64.0, arena=arena)
        )
        arena.close()
        assert shm_frames == default_frames
        assert _shm_entries() == before
