"""The benchmark harness itself: stats, tables, dataset cache, figure3."""

import os

import pytest

from repro.bench.figure3 import (
    PAPER_ENGLE,
    derived_metrics_table,
    panel_table,
    run_figure3_panel,
)
from repro.bench.report import Table, format_table, mean_ci95
from repro.bench.workloads import ensure_dataset
from repro.simulate.machine import ENGLE, TURING
from repro.simulate.workload import IoProfile, TestWorkload


class TestStats:
    def test_mean_ci95_single_sample(self):
        mean, ci = mean_ci95([5.0])
        assert mean == 5.0
        assert ci == 0.0

    def test_mean_ci95_five_samples(self):
        """n=5 -> t(4) = 2.776; known-answer check."""
        samples = [10.0, 12.0, 11.0, 9.0, 13.0]
        mean, ci = mean_ci95(samples)
        assert mean == pytest.approx(11.0)
        assert ci == pytest.approx(2.776 * (2.5 ** 0.5 / 5 ** 0.5),
                                   rel=1e-3)

    def test_mean_ci95_constant(self):
        mean, ci = mean_ci95([4.0, 4.0, 4.0])
        assert mean == 4.0
        assert ci == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci95([])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (30, 4.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "2.50" in lines[2]

    def test_table_emit_archives(self, tmp_path, capsys):
        table = Table("My Table!", ("x",))
        table.add(1)
        table.note("a note")
        table.emit(str(tmp_path))
        printed = capsys.readouterr().out
        assert "My Table!" in printed
        archived = os.listdir(tmp_path)
        assert archived == ["my_table.txt"]
        assert "a note" in open(tmp_path / "my_table.txt").read()

    def test_emit_without_directory(self, capsys):
        table = Table("T", ("x",))
        table.add(1)
        table.emit()
        assert "T" in capsys.readouterr().out


class TestEnsureDataset:
    def test_generates_then_reuses(self, tmp_path):
        root = str(tmp_path)
        first = ensure_dataset(root, scale=0.1, n_steps=2,
                               files_per_snapshot=2)
        mtime = os.path.getmtime(
            os.path.join(first.directory, "manifest.json")
        )
        second = ensure_dataset(root, scale=0.1, n_steps=2,
                                files_per_snapshot=2)
        assert second.directory == first.directory
        assert os.path.getmtime(
            os.path.join(second.directory, "manifest.json")
        ) == mtime

    def test_different_params_different_dirs(self, tmp_path):
        a = ensure_dataset(str(tmp_path), scale=0.1, n_steps=2,
                           files_per_snapshot=2)
        b = ensure_dataset(str(tmp_path), scale=0.1, n_steps=3,
                           files_per_snapshot=2)
        assert a.directory != b.directory


class TestFigure3Harness:
    @pytest.fixture(scope="class")
    def workloads(self):
        godiva = IoProfile(20e6, 100, 10, 80, 8)
        original = IoProfile(25e6, 140, 25, 100, 8)
        return {
            test: TestWorkload(
                test=test, n_snapshots=4, original=original,
                godiva=godiva, compute_s=8.0,
            )
            for test in ("simple", "medium", "complex")
        }

    def test_engle_panel_versions(self, workloads):
        panel = run_figure3_panel(ENGLE, workloads, seeds=(0,))
        versions = {v for _t, v in panel.series}
        assert versions == {"O", "G", "TG"}
        assert panel.machine == "engle"

    def test_turing_panel_versions(self, workloads):
        panel = run_figure3_panel(TURING, workloads, seeds=(0,))
        versions = {v for _t, v in panel.series}
        assert versions == {"O", "G", "TG1", "TG2"}

    def test_tables_render(self, workloads, capsys):
        panel = run_figure3_panel(ENGLE, workloads, seeds=(0, 1))
        bars = panel_table(panel, "bars").render()
        assert "computation (s)" in bars
        metrics = derived_metrics_table(
            panel, "metrics", paper=PAPER_ENGLE
        ).render()
        assert "paper io_red" in metrics
        metrics_plain = derived_metrics_table(
            panel, "metrics-bare"
        ).render()
        assert "paper" not in metrics_plain

    def test_panel_means(self, workloads):
        panel = run_figure3_panel(ENGLE, workloads, seeds=(0, 1, 2))
        total = panel.mean_total("simple", "O")
        visible = panel.mean_visible("simple", "O")
        assert 0 < visible < total


class TestSummaryCli:
    def test_summary_renders_in_order(self, tmp_path, capsys):
        from repro.bench.summary import main, render_summary

        (tmp_path / "p1_parallel.txt").write_text("== P1 ==\nrow\n")
        (tmp_path / "a3_eviction.txt").write_text("== A3 ==\nrow\n")
        (tmp_path / "figure_3_a_engle.txt").write_text("== F3a ==\nx\n")
        text = render_summary(str(tmp_path))
        assert text.index("F3a") < text.index("P1") < text.index("A3")
        assert main([str(tmp_path)]) == 0
        assert "F3a" in capsys.readouterr().out

    def test_summary_empty_dir_hint(self, tmp_path):
        from repro.bench.summary import render_summary

        assert "no archived results" in render_summary(
            str(tmp_path / "nothing")
        )
