"""CDF format: round-trips, header-first locality, format independence."""

import numpy as np
import pytest

from repro.errors import StorageFormatError
from repro.io.cdf import CdfReader, CdfWriter
from repro.io.disk import ENGLE_DISK, IoStats
from repro.io.sdf import SdfReader, SdfWriter


@pytest.fixture
def cdf_path(tmp_path):
    return str(tmp_path / "test.cdf")


def write_sample(path):
    with CdfWriter(path) as writer:
        writer.set_attribute("timestep", "0.000050$")
        writer.set_attribute("step", 1)
        writer.add_dataset(
            "coords", np.arange(30, dtype="<f8").reshape(10, 3),
            attrs={"kind": "node"},
        )
        writer.add_dataset(
            "conn", np.arange(8, dtype="<i4").reshape(2, 4)
        )


class TestRoundTrip:
    def test_datasets(self, cdf_path):
        write_sample(cdf_path)
        with CdfReader(cdf_path) as reader:
            assert reader.dataset_names == ["coords", "conn"]
            coords = reader.read("coords")
            assert coords.shape == (10, 3)
            assert coords[3, 1] == 10.0
            assert reader.read("conn").dtype == np.dtype("<i4")

    def test_attributes(self, cdf_path):
        write_sample(cdf_path)
        with CdfReader(cdf_path) as reader:
            assert reader.file_attributes()["timestep"] == "0.000050$"
            assert reader.attributes("coords") == {"kind": "node"}
            assert reader.attributes("conn") == {}

    def test_info(self, cdf_path):
        write_sample(cdf_path)
        with CdfReader(cdf_path) as reader:
            info = reader.info("coords")
            assert info.shape == (10, 3)
            assert info.data_nbytes == 240
            assert "coords" in reader
            assert "ghost" not in reader

    def test_read_into(self, cdf_path):
        write_sample(cdf_path)
        out = np.zeros(30)
        with CdfReader(cdf_path) as reader:
            reader.read_into("coords", out)
        assert out[4] == 4.0

    def test_empty_file(self, cdf_path):
        with CdfWriter(cdf_path):
            pass
        with CdfReader(cdf_path) as reader:
            assert reader.dataset_names == []
            assert reader.file_attributes() == {}


class TestValidation:
    def test_duplicate_rejected(self, cdf_path):
        with CdfWriter(cdf_path) as writer:
            writer.add_dataset("x", np.zeros(1))
            with pytest.raises(StorageFormatError, match="duplicate"):
                writer.add_dataset("x", np.zeros(1))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.cdf"
        path.write_bytes(b"SDF1" + b"\x00" * 60)
        with pytest.raises(StorageFormatError, match="magic"):
            CdfReader(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "cut.cdf"
        path.write_bytes(b"CD")
        with pytest.raises(StorageFormatError, match="too small"):
            CdfReader(str(path))

    def test_write_after_close(self, cdf_path):
        writer = CdfWriter(cdf_path)
        writer.close()
        with pytest.raises(StorageFormatError):
            writer.add_dataset("x", np.zeros(1))

    def test_missing_dataset(self, cdf_path):
        write_sample(cdf_path)
        with CdfReader(cdf_path) as reader:
            with pytest.raises(StorageFormatError, match="no dataset"):
                reader.read("ghost")


class TestLocality:
    def test_header_first_needs_fewer_positioning_ops(self, tmp_path):
        """Same contents: CDF's single header read + forward data scan
        beats SDF's tail directory + per-dataset attribute seeks."""
        data = {f"d{i}": np.random.default_rng(i).random(5000)
                for i in range(8)}
        sdf, cdf = str(tmp_path / "a.sdf"), str(tmp_path / "a.cdf")
        with SdfWriter(sdf) as writer:
            for name, array in data.items():
                writer.add_dataset(name, array, attrs={"n": 1})
        with CdfWriter(cdf) as writer:
            for name, array in data.items():
                writer.add_dataset(name, array, attrs={"n": 1})

        def traffic(reader_cls, path):
            stats = IoStats()
            with reader_cls(path, stats=stats,
                            profile=ENGLE_DISK) as reader:
                for name in reader.dataset_names:
                    reader.attributes(name)
                    reader.read(name)
            return stats.snapshot()

        sdf_stats = traffic(SdfReader, sdf)
        cdf_stats = traffic(CdfReader, cdf)
        assert cdf_stats["read_calls"] < sdf_stats["read_calls"]
        assert cdf_stats["virtual_seconds"] < \
            sdf_stats["virtual_seconds"]


class TestFormatIndependence:
    def test_voyager_identical_results_across_formats(self, tmp_path):
        """The paper's portability claim, end to end: the same Voyager
        over the same data in two formats produces identical images —
        only the read path differs."""
        from repro.gen.snapshot import SnapshotSpec, generate_dataset
        from repro.gen.titan import TitanConfig
        from repro.viz.image import read_ppm
        from repro.viz.voyager import Voyager, VoyagerConfig

        results = {}
        for fmt in ("sdf", "cdf"):
            data_dir = str(tmp_path / fmt)
            generate_dataset(
                SnapshotSpec(config=TitanConfig.scaled(0.12),
                             n_steps=2, files_per_snapshot=2,
                             file_format=fmt),
                data_dir,
            )
            results[fmt] = Voyager(VoyagerConfig(
                data_dir=data_dir, test="simple", mode="TG",
                mem_mb=64, render=True,
                out_dir=str(tmp_path / f"out_{fmt}"),
            )).run()
        assert results["sdf"].triangles == results["cdf"].triangles
        for a, b in zip(results["sdf"].images, results["cdf"].images):
            assert np.array_equal(read_ppm(a), read_ppm(b))

    def test_original_mode_works_on_cdf(self, tmp_path):
        from repro.gen.snapshot import SnapshotSpec, generate_dataset
        from repro.gen.titan import TitanConfig
        from repro.viz.voyager import Voyager, VoyagerConfig

        data_dir = str(tmp_path / "cdf")
        generate_dataset(
            SnapshotSpec(config=TitanConfig.scaled(0.12), n_steps=1,
                         files_per_snapshot=2, file_format="cdf"),
            data_dir,
        )
        result = Voyager(VoyagerConfig(
            data_dir=data_dir, test="medium", mode="O",
            mem_mb=64, render=False,
        )).run()
        assert result.triangles > 0

    def test_unknown_format_rejected(self):
        from repro.io.readers import open_scientific_file

        with pytest.raises(ValueError, match="unknown file format"):
            open_scientific_file("x", "hdf5")
