"""ShardedGBO: real shard processes, byte-identity, budget protocol."""

import glob

import numpy as np
import pytest

from repro.core.database import GBO
from repro.errors import GodivaDeadlockError
from repro.io.readers import (
    make_snapshot_read_fn,
    snapshot_unit_name,
    solid_schema,
)
from repro.parallel.sharded import ShardedGBO, render_sharded
from repro.viz.camera import Camera
from repro.viz.gops import test_gops as make_test_gops
from repro.viz.pipeline import Pipeline
from repro.viz.voyager import GodivaSnapshotData

pytestmark = pytest.mark.races

TEST = "simple"


def serial_frames(dataset, mem_mb=64.0):
    """The single-process reference frames for the simple op-set."""
    gops = make_test_gops(TEST)
    camera = Camera.fit_bounds((-1.7, -1.7, 0.0), (1.7, 1.7, 10.0))
    pipeline = Pipeline(gops, camera=camera, render=True)
    gbo = GBO(mem_mb=mem_mb)
    read_fn = make_snapshot_read_fn(dataset, fields=gops.fields_used())
    solid_schema().ensure(gbo)
    steps = range(len(dataset.snapshots))
    for step in steps:
        gbo.add_unit(snapshot_unit_name(step), read_fn)
    frames = {}
    for step in steps:
        unit = snapshot_unit_name(step)
        gbo.wait_unit(unit)
        plan = pipeline.begin(GodivaSnapshotData(
            gbo, dataset.snapshots[step].tsid, dataset.block_ids,
        ))
        frames[step] = pipeline.finish(plan).image.tobytes()
        gbo.delete_unit(unit)
    gbo.close()
    return frames


class TestByteIdentity:
    def test_two_shards_match_serial(self, small_dataset):
        reference = serial_frames(small_dataset)
        result = render_sharded(
            small_dataset.directory, 2, test=TEST, mem_mb=64.0,
        )
        assert result.frames.keys() == reference.keys()
        for step, frame in result.frames.items():
            assert not frame.flags.writeable
            assert frame.tobytes() == reference[step]

    def test_zero_copy_frames_valid_until_close(self, small_dataset):
        reference = serial_frames(small_dataset)
        with ShardedGBO(small_dataset.directory, 2, test=TEST,
                        mem_mb=64.0) as cluster:
            result = cluster.render_all()
            # Frames are read-only views over shard shared memory.
            for step, frame in result.frames.items():
                assert not frame.flags.writeable
                with pytest.raises(ValueError):
                    frame[0] = 0
                assert frame.tobytes() == reference[step]

    def test_shared_memory_released_after_close(self, small_dataset):
        before = set(glob.glob("/dev/shm/godiva-*"))
        with ShardedGBO(small_dataset.directory, 2, test=TEST,
                        mem_mb=64.0) as cluster:
            cluster.render_all()
        assert set(glob.glob("/dev/shm/godiva-*")) == before


class TestBudgetProtocol:
    def test_pressure_steals_budget_and_still_renders(
            self, small_dataset):
        """A slice too small for one step forces the pressure path:
        the coordinator work-steals slack from the peer, grants it,
        and every frame still comes out byte-identical."""
        reference = serial_frames(small_dataset)
        result = render_sharded(
            small_dataset.directory, 2, test=TEST,
            mem_mb=0.09375,          # slice 48 KiB < the ~64 KiB floor
            carveout_fraction=0.25,  # floors low -> stealable slack
            background_io=False,
        )
        assert result.pressure_rounds > 0
        assert result.reclaims > 0
        assert result.frames.keys() == reference.keys()
        for step, frame in result.frames.items():
            assert frame.tobytes() == reference[step]

    def test_ledger_tracks_victims(self, small_dataset):
        with ShardedGBO(small_dataset.directory, 2, test=TEST,
                        mem_mb=0.09375, carveout_fraction=0.25,
                        background_io=False) as cluster:
            result = cluster.render_all()
            assert result.pressure_rounds > 0
            snapshot = cluster.ledger_snapshot()
            assert set(snapshot) == {"shard0", "shard1"}
            evictions = sum(
                row["evictions"] for row in snapshot.values()
            )
            assert evictions == result.reclaims
            assert evictions > 0

    def test_no_slack_is_the_deadlock_verdict(self, small_dataset):
        """carveout_fraction=1.0 leaves nothing to steal: pressure is
        denied and the failure surfaces as GodivaDeadlockError."""
        with pytest.raises(GodivaDeadlockError):
            render_sharded(
                small_dataset.directory, 2, test=TEST,
                mem_mb=0.09375, carveout_fraction=1.0,
                background_io=False,
            )


class TestValidation:
    def test_bad_placement(self, small_dataset):
        with pytest.raises(ValueError) as excinfo:
            ShardedGBO(small_dataset.directory, 2, placement="spiral")
        assert "rendezvous" in str(excinfo.value)

    def test_bad_shard_count(self, small_dataset):
        with pytest.raises(ValueError):
            ShardedGBO(small_dataset.directory, 0)

    def test_weighted_placement_assignment(self, small_dataset):
        cluster = ShardedGBO(
            small_dataset.directory, 2, placement="weighted",
            weights=[10.0, 1.0, 1.0, 1.0],
        )
        try:
            assert cluster.assignment["shard0"] == [0]
            assert cluster.assignment["shard1"] == [1, 2, 3]
        finally:
            cluster.close()


class TestComputePlaneWiring:
    def test_compute_args_validated(self, small_dataset):
        with pytest.raises(ValueError):
            ShardedGBO(small_dataset.directory, 2, compute_workers=0)
        with pytest.raises(ValueError):
            ShardedGBO(small_dataset.directory, 2,
                       compute_backend="fibers")

    def test_shard_specs_divide_cores(self, small_dataset):
        """Oversubscription fix: every shard spec carries the per-shard
        thread cap (cores // n_shards, floored at one) alongside the
        requested compute plane."""
        import os as _os

        sharded = ShardedGBO(small_dataset.directory, 2,
                             compute_workers=4,
                             compute_backend="process")
        expected = max(1, (_os.cpu_count() or 1) // 2)
        for spec in sharded._specs:
            assert spec.compute_workers == 4
            assert spec.compute_backend == "process"
            assert spec.compute_max_threads == expected
        sharded.close()
