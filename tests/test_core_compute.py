"""ComputePool: serial inline execution, workers, helping waiters,
close semantics, and stats accounting.

Marked ``races`` so the sanitizer job replays the threaded paths under
the lockset race detector.
"""

import threading

import pytest

from repro.core.compute import (
    CANCELLED,
    DONE,
    ComputePool,
    ComputeTask,
)
from repro.core.stats import GodivaStats
from repro.errors import ComputePoolClosedError

pytestmark = pytest.mark.races


def test_workers_validated():
    with pytest.raises(ValueError):
        ComputePool(0)


def test_serial_submit_runs_inline():
    pool = ComputePool(1)
    ran_on = []
    task = pool.submit(lambda: ran_on.append(threading.current_thread()))
    assert task.state == DONE
    assert ran_on == [threading.main_thread()]
    assert not pool.parallel
    assert pool.workers == 1
    assert pool.threads == []
    pool.close()


def test_serial_submission_order_is_execution_order():
    pool = ComputePool(1)
    order = []
    for i in range(5):
        pool.submit(order.append, i)
    assert order == [0, 1, 2, 3, 4]
    pool.close()


def test_map_returns_results_in_item_order():
    with ComputePool(4, spawn_threads=2) as pool:
        assert pool.map(lambda x: x * x, range(6)) == [
            0, 1, 4, 9, 16, 25]


def test_task_error_reraised_at_wait():
    def boom():
        raise RuntimeError("task failed")

    pool = ComputePool(1)
    with pytest.raises(RuntimeError, match="task failed"):
        pool.submit(boom).wait()
    pool.close()


def test_parallel_error_reraised_at_wait():
    def boom():
        raise RuntimeError("threaded failure")

    with ComputePool(4, spawn_threads=2) as pool:
        task = pool.submit(boom)
        with pytest.raises(RuntimeError, match="threaded failure"):
            task.wait()


def test_waiter_helps_without_start():
    # The pool progresses even when start() is never called: the
    # waiting thread steals queued tasks and runs them itself.
    stats = GodivaStats()
    pool = ComputePool(4, stats=stats, spawn_threads=0)
    pool.start()
    tasks = [pool.submit(lambda x: x + 1, i) for i in range(8)]
    assert pool.wait_all(tasks) == list(range(1, 9))
    assert stats.compute_steals == 8
    assert stats.compute_tasks == 8
    pool.close()


def test_waiter_helps_in_priority_order():
    # A helping waiter pops highest-priority-first, FIFO within ties —
    # the same discipline the worker loop follows.
    order = []
    pool = ComputePool(4, spawn_threads=0)
    low = pool.submit(order.append, "low", priority=-1.0)
    first = pool.submit(order.append, "first")
    second = pool.submit(order.append, "second")
    low.wait()
    assert order == ["first", "second", "low"]
    pool.wait_all([first, second])
    pool.close()


def test_threaded_pool_executes_all_tasks():
    with ComputePool(4, spawn_threads=3) as pool:
        results = pool.map(lambda x: x * 2, range(32))
    assert results == [x * 2 for x in range(32)]


def test_submit_after_close_raises():
    pool = ComputePool(1)
    pool.close()
    with pytest.raises(ComputePoolClosedError):
        pool.submit(lambda: None)


def test_close_cancels_queued_tasks():
    pool = ComputePool(4, spawn_threads=0)  # nothing drains the queue
    task = pool.submit(lambda: 42)
    pool.close()
    assert task.state == CANCELLED
    with pytest.raises(ComputePoolClosedError):
        task.wait()


def test_close_idempotent_and_joins_threads():
    pool = ComputePool(4, spawn_threads=2)
    pool.start()
    threads = pool.threads
    assert len(threads) == 2
    pool.close()
    pool.close()
    assert pool.closed
    assert all(not t.is_alive() for t in threads)
    assert pool.threads == []


def test_concurrent_start_and_close_joins_every_thread():
    """Regression: repro-check (SC101) caught ``start()`` appending to
    ``_threads`` outside the lock, so a concurrent ``close()`` could
    snapshot a half-built list and leave spawned workers unjoined.
    Spawning now happens entirely under the lock; close() swaps the
    list out under the lock and joins outside it."""
    for _ in range(20):
        pool = ComputePool(4, spawn_threads=3)
        release = threading.Event()
        spawned = []

        class _GatedThread(threading.Thread):
            """Widens the start/close race window: the starter blocks
            after thread objects exist but before start() returns."""

            def start(self):
                spawned.append(self)
                release.wait(timeout=5.0)
                super().start()

        pool._thread_factory = _GatedThread
        starter = threading.Thread(target=pool.start)
        starter.start()
        closer = threading.Thread(target=pool.close)
        closer.start()
        release.set()
        starter.join(timeout=5.0)
        closer.join(timeout=5.0)
        assert not starter.is_alive() and not closer.is_alive()
        for thread in spawned:
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "close() leaked a worker"
        assert pool.closed
        assert pool.threads == []


def test_stats_count_tasks_and_time():
    stats = GodivaStats()
    clock = iter(range(100))
    pool = ComputePool(1, stats=stats, clock=lambda: float(next(clock)))
    pool.submit(lambda: None)
    pool.submit(lambda: None)
    assert stats.compute_tasks == 2
    assert stats.compute_task_seconds == 2.0  # one tick per task
    pool.close()


def test_queue_depth_peak_tracked():
    stats = GodivaStats()
    pool = ComputePool(4, stats=stats, spawn_threads=0)
    tasks = [pool.submit(lambda: None) for _ in range(5)]
    assert stats.compute_queue_depth_peak == 5
    pool.wait_all(tasks)
    pool.close()


def test_task_repr_and_done():
    pool = ComputePool(1)
    task = pool.submit(lambda: "x")
    assert task.done
    assert isinstance(task, ComputeTask)
    assert "done" in repr(task)
    pool.close()


def test_context_manager_starts_and_closes():
    with ComputePool(2, spawn_threads=1) as pool:
        assert pool.parallel
        assert pool.submit(lambda: 7).wait() == 7
    assert pool.closed


def test_max_threads_caps_spawned_workers():
    """The oversubscription fix: a host-level cap wins over both the
    worker count and an explicit spawn_threads override."""
    pool = ComputePool(8, spawn_threads=6, max_threads=2)
    pool.start()
    assert len(pool.threads) == 2
    assert pool.map(lambda x: x + 1, range(8)) == list(range(1, 9))
    pool.close()


def test_max_threads_zero_means_helping_waiters_only():
    stats = GodivaStats()
    pool = ComputePool(4, spawn_threads=4, max_threads=0, stats=stats)
    pool.start()
    assert pool.threads == []
    tasks = [pool.submit(lambda i=i: i * 2) for i in range(3)]
    assert [t.wait() for t in tasks] == [0, 2, 4]
    assert stats.compute_steals > 0
    pool.close()


def test_max_threads_validated():
    with pytest.raises(ValueError):
        ComputePool(2, max_threads=-1)
