"""Property-based tests (hypothesis) for the foundational structures.

Each structure is driven with random operation sequences against a plain
Python model; the red-black tree additionally re-verifies its five
invariants after every mutation.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.structures.fifoqueue import FifoQueue
from repro.structures.lru import LruList
from repro.structures.rbtree import RedBlackTree

keys = st.integers(min_value=-50, max_value=50)
values = st.integers()


@given(st.lists(st.tuples(keys, values)))
def test_rbtree_matches_dict_on_inserts(pairs):
    tree = RedBlackTree()
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()


@given(
    st.lists(st.tuples(keys, values)),
    st.lists(keys),
)
def test_rbtree_matches_dict_with_deletes(pairs, deletions):
    tree = RedBlackTree()
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    for key in deletions:
        assert tree.delete(key) == (key in model)
        model.pop(key, None)
        tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())


@given(st.lists(st.tuples(keys, values), min_size=1),
       keys, keys)
def test_rbtree_range_matches_model(pairs, low, high):
    if low > high:
        low, high = high, low
    tree = RedBlackTree()
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    expected = sorted(
        (k, v) for k, v in model.items() if low <= k <= high
    )
    assert list(tree.range(low, high)) == expected


class RbTreeMachine(RuleBasedStateMachine):
    """Stateful interleaving of inserts/deletes/pops with invariants."""

    def __init__(self):
        super().__init__()
        self.tree = RedBlackTree()
        self.model = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        created = self.tree.insert(key, value)
        assert created == (key not in self.model)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule()
    def pop_minimum(self):
        if self.model:
            key, value = self.tree.pop_minimum()
            assert key == min(self.model)
            assert self.model.pop(key) == value

    @rule(key=keys)
    def lookup(self, key):
        assert self.tree.find(key) == self.model.get(key)

    @invariant()
    def check(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


TestRbTreeStateful = RbTreeMachine.TestCase
TestRbTreeStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class LruMachine(RuleBasedStateMachine):
    """LruList against an OrderedDict model (move_to_end semantics)."""

    items = st.integers(min_value=0, max_value=20)

    def __init__(self):
        super().__init__()
        self.lru = LruList()
        self.model = OrderedDict()

    @rule(item=items)
    def touch(self, item):
        self.lru.touch(item)
        self.model.pop(item, None)
        self.model[item] = True

    @rule(item=items)
    def discard(self, item):
        assert self.lru.discard(item) == (item in self.model)
        self.model.pop(item, None)

    @rule()
    def pop_lru(self):
        if self.model:
            expected = next(iter(self.model))
            assert self.lru.pop_lru() == expected
            del self.model[expected]

    @invariant()
    def check(self):
        assert list(self.lru) == list(self.model)
        assert len(self.lru) == len(self.model)


TestLruStateful = LruMachine.TestCase
TestLruStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class FifoMachine(RuleBasedStateMachine):
    """FifoQueue against a plain list model, covering the tombstone
    remove/re-push cycle."""

    items = st.integers(min_value=0, max_value=10)

    def __init__(self):
        super().__init__()
        self.queue = FifoQueue()
        self.model = []

    @rule(item=items)
    def push(self, item):
        if item in self.model:
            return  # duplicate live push is rejected; not interesting
        self.queue.push(item)
        self.model.append(item)

    @rule()
    def pop(self):
        if self.model:
            assert self.queue.pop() == self.model.pop(0)

    @rule(item=items)
    def remove(self, item):
        assert self.queue.remove(item) == (item in self.model)
        if item in self.model:
            self.model.remove(item)

    @rule()
    def peek(self):
        if self.model:
            assert self.queue.peek() == self.model[0]

    @invariant()
    def check(self):
        assert list(self.queue) == self.model
        assert len(self.queue) == len(self.model)
        for item in self.model:
            assert item in self.queue


TestFifoStateful = FifoMachine.TestCase
TestFifoStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
