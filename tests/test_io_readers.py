"""GODIVA read callbacks over the snapshot dataset layout."""

import numpy as np
import pytest

from repro.core.database import GBO
from repro.gen.quantities import ELEMENT_FIELDS, NODE_FIELDS
from repro.gen.snapshot import block_key
from repro.io.disk import ENGLE_DISK, IoStats
from repro.io.readers import (
    ALL_SOLID_FIELDS,
    load_snapshot_records,
    make_snapshot_read_fn,
    snapshot_unit_name,
    solid_schema,
    unit_step,
)


def test_unit_name_roundtrip():
    assert snapshot_unit_name(7) == "snap:0007"
    assert unit_step("snap:0007") == 7
    with pytest.raises(ValueError):
        unit_step("file:0007")
    with pytest.raises(ValueError):
        unit_step("snap:x")


def test_all_solid_fields_cover_schema():
    assert ALL_SOLID_FIELDS[:2] == ["coords", "conn"]
    assert set(ALL_SOLID_FIELDS) == (
        {"coords", "conn"} | set(NODE_FIELDS) | set(ELEMENT_FIELDS)
    )


def test_solid_schema_keys():
    schema = solid_schema()
    assert schema.key_names == ("block id", "time-step id")
    sizes = {f.name: f.size for f in schema.fields if f.is_key}
    assert sizes == {"block id": 11, "time-step id": 9}


def test_load_snapshot_records(small_dataset, gbo_single):
    count = load_snapshot_records(gbo_single, small_dataset, step=0)
    assert count == small_dataset.n_blocks
    assert gbo_single.record_count("solid") == count

    tsid = small_dataset.snapshots[0].tsid
    block = small_dataset.block_ids[0]
    keys = [block_key(block).encode(), tsid.encode()]
    coords = gbo_single.get_field_buffer("solid", "coords", keys)
    assert len(coords) % 3 == 0
    conn = gbo_single.get_field_buffer("solid", "conn", keys)
    assert conn.dtype == np.dtype("<i4")
    assert len(conn) % 4 == 0
    # Connectivity references the block's own nodes.
    assert conn.max() < len(coords) // 3


def test_load_restricted_fields(small_dataset, gbo_single):
    load_snapshot_records(
        gbo_single, small_dataset, step=0, fields=["velocity"]
    )
    tsid = small_dataset.snapshots[0].tsid
    block = small_dataset.block_ids[0]
    keys = [block_key(block).encode(), tsid.encode()]
    record = gbo_single.get_record("solid", keys)
    assert record.field("velocity").allocated
    assert record.field("coords").allocated   # mesh always loaded
    assert not record.field("temperature").allocated


def test_read_fn_via_units(small_dataset):
    stats = IoStats()
    read_fn = make_snapshot_read_fn(
        small_dataset, fields=["velocity"], stats=stats,
        profile=ENGLE_DISK,
    )
    with GBO(mem_mb=64) as gbo:
        for step in range(2):
            gbo.add_unit(snapshot_unit_name(step), read_fn)
        for step in range(2):
            gbo.wait_unit(snapshot_unit_name(step))
            gbo.delete_unit(snapshot_unit_name(step))
    snap = stats.snapshot()
    assert snap["bytes_read"] > 0
    assert snap["virtual_seconds"] > 0


def test_two_snapshots_coexist_under_distinct_timesteps(
    small_dataset, gbo_single
):
    """Records of the same block from different snapshots are distinct
    because the time-step ID is a key field."""
    load_snapshot_records(gbo_single, small_dataset, step=0,
                          fields=[])
    load_snapshot_records(gbo_single, small_dataset, step=1,
                          fields=[])
    assert gbo_single.record_count("solid") == \
        2 * small_dataset.n_blocks
