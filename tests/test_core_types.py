"""Unit tests for the field/record type system (section 3.1)."""

import numpy as np
import pytest

from repro.core.types import UNKNOWN, DataType, FieldType, RecordType
from repro.errors import SchemaError


class TestDataType:
    def test_itemsizes(self):
        assert DataType.STRING.itemsize == 1
        assert DataType.BYTE.itemsize == 1
        assert DataType.INT32.itemsize == 4
        assert DataType.INT64.itemsize == 8
        assert DataType.FLOAT.itemsize == 4
        assert DataType.DOUBLE.itemsize == 8

    def test_numpy_dtypes_little_endian(self):
        assert DataType.DOUBLE.numpy_dtype == np.dtype("<f8")
        assert DataType.INT32.numpy_dtype == np.dtype("<i4")
        assert DataType.STRING.numpy_dtype == np.dtype("u1")


class TestUnknownSentinel:
    def test_singleton(self):
        from repro.core.types import _Unknown

        assert _Unknown() is UNKNOWN
        assert repr(UNKNOWN) == "UNKNOWN"

    def test_pickle_preserves_identity(self):
        import pickle

        assert pickle.loads(pickle.dumps(UNKNOWN)) is UNKNOWN


class TestFieldType:
    def test_known_size(self):
        ft = FieldType("pressure", DataType.DOUBLE, 800)
        assert ft.has_known_size
        assert ft.size == 800

    def test_unknown_size(self):
        ft = FieldType("pressure", DataType.DOUBLE, UNKNOWN)
        assert not ft.has_known_size

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            FieldType("", DataType.DOUBLE, 8)

    def test_bad_data_type_rejected(self):
        with pytest.raises(SchemaError):
            FieldType("x", "DOUBLE", 8)

    def test_negative_size_rejected(self):
        with pytest.raises(SchemaError):
            FieldType("x", DataType.DOUBLE, -8)

    def test_misaligned_size_rejected(self):
        with pytest.raises(SchemaError):
            FieldType("x", DataType.DOUBLE, 10)

    def test_bool_size_rejected(self):
        with pytest.raises(SchemaError):
            FieldType("x", DataType.BYTE, True)

    def test_frozen_equality(self):
        a = FieldType("x", DataType.DOUBLE, 8)
        b = FieldType("x", DataType.DOUBLE, 8)
        assert a == b


class TestRecordType:
    def _fluid(self):
        rt = RecordType("fluid", num_keys=2)
        rt.insert_field(FieldType("block id", DataType.STRING, 11), True)
        rt.insert_field(
            FieldType("time-step id", DataType.STRING, 9), True
        )
        rt.insert_field(
            FieldType("pressure", DataType.DOUBLE, UNKNOWN), False
        )
        return rt

    def test_commit_happy_path(self):
        rt = self._fluid()
        assert not rt.committed
        rt.commit()
        assert rt.committed
        assert rt.key_field_names == ("block id", "time-step id")
        assert rt.field_names == (
            "block id", "time-step id", "pressure"
        )

    def test_key_order_is_insertion_order(self):
        rt = RecordType("r", num_keys=2)
        rt.insert_field(FieldType("k2", DataType.STRING, 4), True)
        rt.insert_field(FieldType("k1", DataType.STRING, 4), True)
        rt.commit()
        assert rt.key_field_names == ("k2", "k1")

    def test_zero_keys_rejected(self):
        with pytest.raises(SchemaError):
            RecordType("r", num_keys=0)

    def test_commit_with_missing_keys_rejected(self):
        rt = RecordType("r", num_keys=2)
        rt.insert_field(FieldType("k", DataType.STRING, 4), True)
        with pytest.raises(SchemaError, match="declared 2 key fields"):
            rt.commit()

    def test_too_many_keys_rejected(self):
        rt = RecordType("r", num_keys=1)
        rt.insert_field(FieldType("k1", DataType.STRING, 4), True)
        with pytest.raises(SchemaError):
            rt.insert_field(FieldType("k2", DataType.STRING, 4), True)

    def test_unknown_size_key_rejected(self):
        rt = RecordType("r", num_keys=1)
        with pytest.raises(SchemaError, match="known size"):
            rt.insert_field(
                FieldType("k", DataType.DOUBLE, UNKNOWN), True
            )

    def test_duplicate_field_rejected(self):
        rt = self._fluid()
        with pytest.raises(SchemaError, match="already has field"):
            rt.insert_field(
                FieldType("pressure", DataType.DOUBLE, UNKNOWN), False
            )

    def test_empty_commit_rejected(self):
        rt = RecordType("r", num_keys=1)
        with pytest.raises(SchemaError, match="no fields"):
            rt.commit()

    def test_double_commit_rejected(self):
        rt = self._fluid()
        rt.commit()
        with pytest.raises(SchemaError, match="already committed"):
            rt.commit()

    def test_insert_after_commit_rejected(self):
        rt = self._fluid()
        rt.commit()
        with pytest.raises(SchemaError, match="committed"):
            rt.insert_field(FieldType("t", DataType.DOUBLE, 8), False)

    def test_field_lookup(self):
        rt = self._fluid()
        assert rt.field("pressure").data_type is DataType.DOUBLE
        assert rt.has_field("pressure")
        assert not rt.has_field("ghost")
        with pytest.raises(SchemaError):
            rt.field("ghost")

    def test_is_key(self):
        rt = self._fluid()
        assert rt.is_key("block id")
        assert not rt.is_key("pressure")
        with pytest.raises(SchemaError):
            rt.is_key("ghost")

    def test_fixed_size_bytes(self):
        rt = self._fluid()
        assert rt.fixed_size_bytes() == 11 + 9  # UNKNOWN excluded
