"""Unit tests for the declarative RecordSchema helper."""

import pytest

from repro.core.schema import (
    RecordSchema,
    SchemaField,
    fluid_sample_schema,
)
from repro.core.types import UNKNOWN, DataType
from repro.errors import SchemaError


def test_fluid_sample_matches_table1():
    schema = fluid_sample_schema()
    assert schema.name == "fluid"
    assert schema.num_keys == 2
    assert schema.key_names == ("block id", "time-step id")
    sizes = {f.name: f.size for f in schema.fields}
    assert sizes["block id"] == 11
    assert sizes["time-step id"] == 9
    assert sizes["pressure"] is UNKNOWN
    types = {f.name: f.data_type for f in schema.fields}
    assert types["x coordinates"] is DataType.DOUBLE
    assert types["block id"] is DataType.STRING


def test_ensure_defines_and_commits(gbo):
    schema = fluid_sample_schema()
    schema.ensure(gbo)
    assert gbo.has_record_type("fluid")
    assert gbo.record_type("fluid").committed
    assert gbo.has_field_type("pressure")


def test_ensure_is_idempotent(gbo):
    schema = fluid_sample_schema()
    schema.ensure(gbo)
    schema.ensure(gbo)  # read callbacks re-run this; must not raise
    assert gbo.record_type("fluid").committed


def test_ensure_conflicting_field_definition_raises(gbo):
    gbo.define_field("pressure", DataType.FLOAT, UNKNOWN)
    with pytest.raises(SchemaError, match="redefined"):
        fluid_sample_schema().ensure(gbo)


def test_custom_schema_roundtrip(gbo):
    schema = RecordSchema("custom", (
        SchemaField("key", DataType.STRING, 8, is_key=True),
        SchemaField("values", DataType.INT64),
    ))
    schema.ensure(gbo)
    record = gbo.new_record("custom")
    record.field("key").write(b"k0000000")
    gbo.alloc_field_buffer(record, "values", 40)
    gbo.commit_record(record)
    assert gbo.get_field_buffer_size(
        "custom", "values", [b"k0000000"]
    ) == 40


class TestEnsureRecordTypeAtomicity:
    """GBO.ensure_record_type: the atomic path RecordSchema.ensure uses
    so concurrent read callbacks cannot collide in define_record."""

    def test_returns_committed_type_idempotently(self, gbo):
        schema = fluid_sample_schema()
        schema.ensure(gbo)
        first = gbo.record_type("fluid")
        second = gbo.ensure_record_type(
            "fluid", schema.num_keys,
            [(f.name, f.is_key) for f in schema.fields],
        )
        assert second is first
        assert second.committed

    def test_mismatched_redefinition_rejected(self, gbo):
        fluid_sample_schema().ensure(gbo)
        with pytest.raises(SchemaError, match="different field set"):
            gbo.ensure_record_type("fluid", 1, [("pressure", True)])

    def test_unknown_field_type_rejected(self, gbo):
        from repro.errors import UnknownTypeError
        with pytest.raises(UnknownTypeError, match="mystery"):
            gbo.ensure_record_type("broken", 1, [("mystery", True)])

    def test_concurrent_ensure_is_race_free(self, gbo):
        """Many threads (standing in for I/O workers re-running a read
        callback) declaring the same schema at once: all must succeed
        and exactly one definition must win."""
        import threading

        schema = fluid_sample_schema()
        start = threading.Barrier(8)
        errors = []

        def declare():
            try:
                start.wait(timeout=10.0)
                for _ in range(25):
                    schema.ensure(gbo)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=declare) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert gbo.record_type("fluid").committed
