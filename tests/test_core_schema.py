"""Unit tests for the declarative RecordSchema helper."""

import pytest

from repro.core.schema import (
    RecordSchema,
    SchemaField,
    fluid_sample_schema,
)
from repro.core.types import UNKNOWN, DataType
from repro.errors import SchemaError


def test_fluid_sample_matches_table1():
    schema = fluid_sample_schema()
    assert schema.name == "fluid"
    assert schema.num_keys == 2
    assert schema.key_names == ("block id", "time-step id")
    sizes = {f.name: f.size for f in schema.fields}
    assert sizes["block id"] == 11
    assert sizes["time-step id"] == 9
    assert sizes["pressure"] is UNKNOWN
    types = {f.name: f.data_type for f in schema.fields}
    assert types["x coordinates"] is DataType.DOUBLE
    assert types["block id"] is DataType.STRING


def test_ensure_defines_and_commits(gbo):
    schema = fluid_sample_schema()
    schema.ensure(gbo)
    assert gbo.has_record_type("fluid")
    assert gbo.record_type("fluid").committed
    assert gbo.has_field_type("pressure")


def test_ensure_is_idempotent(gbo):
    schema = fluid_sample_schema()
    schema.ensure(gbo)
    schema.ensure(gbo)  # read callbacks re-run this; must not raise
    assert gbo.record_type("fluid").committed


def test_ensure_conflicting_field_definition_raises(gbo):
    gbo.define_field("pressure", DataType.FLOAT, UNKNOWN)
    with pytest.raises(SchemaError, match="redefined"):
        fluid_sample_schema().ensure(gbo)


def test_custom_schema_roundtrip(gbo):
    schema = RecordSchema("custom", (
        SchemaField("key", DataType.STRING, 8, is_key=True),
        SchemaField("values", DataType.INT64),
    ))
    schema.ensure(gbo)
    record = gbo.new_record("custom")
    record.field("key").write(b"k0000000")
    gbo.alloc_field_buffer(record, "values", 40)
    gbo.commit_record(record)
    assert gbo.get_field_buffer_size(
        "custom", "values", [b"k0000000"]
    ) == 40
