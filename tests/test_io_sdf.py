"""SDF format: round-trips, metadata, error handling."""

import numpy as np
import pytest

from repro.errors import StorageFormatError
from repro.io.disk import ENGLE_DISK, IoStats
from repro.io.sdf import DatasetInfo, SdfReader, SdfWriter


@pytest.fixture
def sdf_path(tmp_path):
    return str(tmp_path / "test.sdf")


def write_sample(path):
    with SdfWriter(path) as writer:
        writer.set_attribute("timestep", "0.000025$")
        writer.set_attribute("step", 3)
        writer.set_attribute("time", 7.5e-5)
        writer.set_attribute("raw", b"\x00\x01")
        writer.add_dataset(
            "coords", np.arange(30, dtype="<f8").reshape(10, 3),
            attrs={"kind": "node"},
        )
        writer.add_dataset(
            "conn", np.arange(8, dtype="<i4").reshape(2, 4)
        )
        writer.add_dataset("scalar", np.array([1.5]))


class TestRoundTrip:
    def test_datasets_roundtrip(self, sdf_path):
        write_sample(sdf_path)
        with SdfReader(sdf_path) as reader:
            coords = reader.read("coords")
            assert coords.shape == (10, 3)
            assert coords.dtype == np.dtype("<f8")
            assert coords[3, 1] == 10.0
            conn = reader.read("conn")
            assert conn.dtype == np.dtype("<i4")
            assert conn.tolist() == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_dataset_names_in_order(self, sdf_path):
        write_sample(sdf_path)
        with SdfReader(sdf_path) as reader:
            assert reader.dataset_names == ["coords", "conn", "scalar"]
            assert "coords" in reader
            assert "ghost" not in reader

    def test_file_attributes_roundtrip(self, sdf_path):
        write_sample(sdf_path)
        with SdfReader(sdf_path) as reader:
            attrs = reader.file_attributes()
        assert attrs["timestep"] == "0.000025$"
        assert attrs["step"] == 3
        assert attrs["time"] == 7.5e-5
        assert attrs["raw"] == b"\x00\x01"

    def test_dataset_attributes(self, sdf_path):
        write_sample(sdf_path)
        with SdfReader(sdf_path) as reader:
            assert reader.attributes("coords") == {"kind": "node"}
            assert reader.attributes("conn") == {}

    def test_info_without_reading_data(self, sdf_path):
        write_sample(sdf_path)
        with SdfReader(sdf_path) as reader:
            info = reader.info("coords")
            assert isinstance(info, DatasetInfo)
            assert info.shape == (10, 3)
            assert info.size == 30
            assert info.data_nbytes == 240

    def test_read_into(self, sdf_path):
        write_sample(sdf_path)
        out = np.zeros(30)
        with SdfReader(sdf_path) as reader:
            reader.read_into("coords", out)
        assert out[4] == 4.0

    def test_empty_file_roundtrip(self, sdf_path):
        with SdfWriter(sdf_path):
            pass
        with SdfReader(sdf_path) as reader:
            assert reader.dataset_names == []
            assert reader.file_attributes() == {}

    def test_scalar_0d_and_high_rank(self, sdf_path):
        with SdfWriter(sdf_path) as writer:
            writer.add_dataset("zero", np.float64(4.0))
            writer.add_dataset(
                "four", np.zeros((2, 3, 4, 5), dtype="<f4")
            )
        with SdfReader(sdf_path) as reader:
            assert reader.read("zero") == 4.0
            assert reader.read("four").shape == (2, 3, 4, 5)

    def test_big_endian_input_normalized(self, sdf_path):
        with SdfWriter(sdf_path) as writer:
            writer.add_dataset("x", np.arange(4, dtype=">f8"))
        with SdfReader(sdf_path) as reader:
            data = reader.read("x")
            assert data.dtype == np.dtype("<f8")
            assert data.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_noncontiguous_input(self, sdf_path):
        base = np.arange(20, dtype="<f8").reshape(4, 5)
        with SdfWriter(sdf_path) as writer:
            writer.add_dataset("strided", base[:, ::2])
        with SdfReader(sdf_path) as reader:
            assert np.array_equal(reader.read("strided"), base[:, ::2])


class TestWriterValidation:
    def test_duplicate_dataset_rejected(self, sdf_path):
        with SdfWriter(sdf_path) as writer:
            writer.add_dataset("x", np.zeros(1))
            with pytest.raises(StorageFormatError, match="duplicate"):
                writer.add_dataset("x", np.zeros(1))

    def test_long_name_rejected(self, sdf_path):
        with SdfWriter(sdf_path) as writer:
            with pytest.raises(StorageFormatError):
                writer.add_dataset("n" * 65, np.zeros(1))

    def test_rank5_rejected(self, sdf_path):
        with SdfWriter(sdf_path) as writer:
            with pytest.raises(StorageFormatError, match="rank"):
                writer.add_dataset("x", np.zeros((1, 1, 1, 1, 1)))

    def test_write_after_close_rejected(self, sdf_path):
        writer = SdfWriter(sdf_path)
        writer.close()
        with pytest.raises(StorageFormatError):
            writer.add_dataset("x", np.zeros(1))
        writer.close()  # idempotent

    def test_bool_attribute_rejected(self, sdf_path):
        writer = SdfWriter(sdf_path)
        writer.set_attribute("flag", True)
        with pytest.raises(StorageFormatError):
            writer.close()


class TestReaderValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.sdf"
        path.write_bytes(b"NOPE" + b"\x00" * 60)
        with pytest.raises(StorageFormatError, match="magic"):
            SdfReader(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "tiny.sdf"
        path.write_bytes(b"SD")
        with pytest.raises(StorageFormatError, match="too small"):
            SdfReader(str(path))

    def test_truncated_directory(self, sdf_path, tmp_path):
        write_sample(sdf_path)
        blob = open(sdf_path, "rb").read()
        cut = tmp_path / "cut.sdf"
        cut.write_bytes(blob[:-10])
        with pytest.raises(StorageFormatError, match="truncated"):
            SdfReader(str(cut))

    def test_missing_dataset(self, sdf_path):
        write_sample(sdf_path)
        with SdfReader(sdf_path) as reader:
            with pytest.raises(StorageFormatError, match="no dataset"):
                reader.read("ghost")
            with pytest.raises(StorageFormatError):
                reader.info("ghost")


class TestCostAccounting:
    def test_metadata_then_data_access_pattern(self, sdf_path):
        """Opening reads header+directory; each read() seeks to data —
        the scientific-format access shape the paper discusses."""
        write_sample(sdf_path)
        stats = IoStats()
        with SdfReader(sdf_path, stats=stats,
                       profile=ENGLE_DISK) as reader:
            after_open = stats.snapshot()
            assert after_open["read_calls"] == 2  # header + directory
            reader.read("coords")
            reader.read("conn")
        snap = stats.snapshot()
        assert snap["read_calls"] == 4
        assert snap["bytes_read"] > 240 + 32
        assert snap["virtual_seconds"] > 0
