"""repro-check: each SC rule on synthetic sources, the interprocedural
propagation machinery, and the repo-cleanliness gate CI enforces.

Synthetic classes reuse registry names (``ComputePool``, ``UnitStore``,
``RecordEngine``...) to inherit their lock roles; the registry-drift
pass then also reports the fields those stand-ins do not declare, so
assertions here are membership-based rather than exact-list."""

import os

from repro.analysis import static
from repro.analysis.baseline import load_baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC = '"""Module docstring."""\n'


def diagnostics(source, path="src/repro/somewhere.py"):
    return static.check_sources([(path, DOC + source)])


def keys(source, rule=None):
    return [
        d.key for d in diagnostics(source)
        if rule is None or d.rule == rule
    ]


class TestSC101GuardedAccess:
    UNSAFE = (
        "@guarded_by('_items', lock='_lock')\n"
        "class Widget:\n"
        '    """Doc."""\n'
        "    def peek(self):\n"
        '        """No contract, no lock."""\n'
        "        return self._items\n"
        "    def read(self):\n"
        '        """Covered. Lock held."""\n'
        "        return self._items\n"
        "    def add(self, x):\n"
        '        """Takes the lock lexically."""\n'
        "        with self._lock:\n"
        "            self._items.append(x)\n"
    )

    def test_unlocked_access_flagged_with_line(self):
        found = [d for d in diagnostics(self.UNSAFE)
                 if d.rule == "SC101"]
        assert [d.symbol for d in found] == ["Widget.peek:Widget._items"]
        assert found[0].line == 7
        assert "_items" in found[0].message

    def test_contract_and_lexical_lock_are_clean(self):
        assert not [k for k in keys(self.UNSAFE, "SC101")
                    if "read" in k or "add" in k]

    def test_condition_alias_counts_as_the_lock(self):
        src = (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
            "    def drain(self):\n"
            '        """Uses the paired condition."""\n'
            "        with self._cond:\n"
            "            return list(self._items)\n"
        )
        assert keys(src, "SC101") == []

    def test_registry_class_checked_without_decorator_noise(self):
        # A registry class (engine role) accessed through a typed
        # attribute from another class.
        src = (
            "class Holder:\n"
            '    """Doc."""\n'
            "    def __init__(self):\n"
            "        self._store = UnitStore()\n"
            "    def sizes(self):\n"
            '        """No lock."""\n'
            "        return len(self._store._units)\n"
            "class UnitStore:\n"
            '    """Doc."""\n'
        )
        assert "SC101:src/repro/somewhere.py:Holder.sizes:UnitStore._units" \
            in keys(src, "SC101")

    def test_init_is_exempt(self):
        src = (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
            "    def __init__(self):\n"
            "        self._items = []\n"
        )
        assert keys(src, "SC101") == []

    def test_nested_defs_are_exempt(self):
        src = (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
            "    def schedule(self):\n"
            '        """Builds a callback. Lock held."""\n'
            "        def _cb():\n"
            "            return self._items\n"
            "        return _cb\n"
        )
        assert keys(src, "SC101") == []


class TestSC102Hierarchy:
    def test_out_of_order_acquisition_flagged(self):
        # compute (rank 2) held, then record (rank 1): order violation.
        src = (
            "class ComputePool:\n"
            '    """Doc."""\n'
            "    def bad(self, records: 'RecordEngine'):\n"
            '        """Backwards nesting."""\n'
            "        with self._lock:\n"
            "            with records._lock:\n"
            "                pass\n"
            "class RecordEngine:\n"
            '    """Doc."""\n'
        )
        found = [d for d in diagnostics(src) if d.rule == "SC102"]
        assert [d.symbol for d in found] == [
            "ComputePool.bad:record<-compute"
        ]
        assert "engine -> record -> compute" in found[0].message

    def test_declared_order_is_clean(self):
        src = (
            "class RecordEngine:\n"
            '    """Doc."""\n'
            "    def fine(self, pool: 'ComputePool'):\n"
            '        """Correct nesting."""\n'
            "        with self._lock:\n"
            "            with pool._lock:\n"
            "                pass\n"
            "class ComputePool:\n"
            '    """Doc."""\n'
        )
        assert keys(src, "SC102") == []

    def test_reacquire_flagged_as_self_deadlock(self):
        src = (
            "class UnitStore:\n"
            '    """Doc."""\n'
            "    def stuck(self):\n"
            '        """Double acquisition."""\n'
            "        with self._lock:\n"
            "            self._lock.acquire()\n"
        )
        found = [d for d in diagnostics(src) if d.rule == "SC102"]
        assert [d.symbol for d in found] == [
            "UnitStore.stuck:engine<-engine"
        ]
        assert "self-deadlock" in found[0].message

    def test_unranked_lock_nests_anywhere(self):
        src = (
            "class ComputePool:\n"
            '    """Doc."""\n'
            "    def count(self, stats: 'IoStats'):\n"
            '        """iostats is unranked: legal under any lock."""\n'
            "        with self._lock:\n"
            "            with stats._lock:\n"
            "                pass\n"
            "class IoStats:\n"
            '    """Doc."""\n'
        )
        assert keys(src, "SC102") == []


class TestSC103BlockingUnderLeaf:
    def test_sleep_under_compute_lock_flagged(self):
        src = (
            "import time\n"
            "class ComputePool:\n"
            '    """Doc."""\n'
            "    def nap(self):\n"
            '        """Sleeps while holding the leaf."""\n'
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
        )
        assert "SC103:src/repro/somewhere.py:" \
            "ComputePool.nap:time.sleep()@compute" in keys(src, "SC103")

    def test_open_under_iostats_lock_flagged(self):
        src = (
            "class IoStats:\n"
            '    """Doc."""\n'
            "    def dump(self, path):\n"
            '        """File I/O under the stats leaf."""\n'
            "        with self._lock:\n"
            "            with open(path) as f:\n"
            "                f.write('x')\n"
        )
        assert any("open()@iostats" in k for k in keys(src, "SC103"))

    def test_wait_on_own_condition_is_exempt(self):
        # Condition.wait releases its own lock while sleeping.
        src = (
            "class ComputePool:\n"
            '    """Doc."""\n'
            "    def idle(self):\n"
            '        """Classic guarded wait."""\n'
            "        with self._cond:\n"
            "            while True:\n"
            "                self._cond.wait()\n"
        )
        assert keys(src, "SC103") == []

    def test_wait_on_other_condition_flagged(self):
        src = (
            "class ComputePool:\n"
            '    """Doc."""\n'
            "    def cross(self, store: 'UnitStore'):\n"
            '        """Waits on a different lock\'s condition."""\n'
            "        with self._lock:\n"
            "            store._cond.wait()\n"
        )
        assert any("@compute" in k for k in keys(src, "SC103"))

    def test_blocking_under_non_leaf_is_clean(self):
        src = (
            "import time\n"
            "class UnitStore:\n"
            '    """Doc."""\n'
            "    def nap(self):\n"
            '        """Engine lock is not a leaf."""\n'
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
        )
        assert keys(src, "SC103") == []

    def test_leaf_propagates_through_calls(self):
        # The blocking op is in a helper; only the *caller* holds the
        # leaf — SC103 must come from the propagated context, with the
        # proving chain attached.
        src = (
            "import time\n"
            "class ComputePool:\n"
            '    """Doc."""\n'
            "    def outer(self):\n"
            '        """Holds the leaf across a call."""\n'
            "        with self._lock:\n"
            "            self._helper()\n"
            "    def _helper(self):\n"
            "        time.sleep(0.1)\n"
        )
        found = [d for d in diagnostics(src) if d.rule == "SC103"]
        assert len(found) == 1
        assert found[0].symbol == "ComputePool._helper:time.sleep()@compute"
        assert found[0].chain == ("ComputePool.outer",
                                  "ComputePool._helper")
        assert "[chain: ComputePool.outer -> ComputePool._helper]" \
            in repr(found[0])


class TestSC104ContractDrift:
    def test_uncontracted_call_site_flagged(self):
        src = (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
            "    def read(self):\n"
            '        """Lock held."""\n'
            "        return self._items\n"
            "    def careless(self):\n"
            '        """Calls the contract method without the lock."""\n'
            "        return self.read()\n"
            "    def careful(self):\n"
            '        """Honors the contract."""\n'
            "        with self._lock:\n"
            "            return self.read()\n"
        )
        found = [d.symbol for d in diagnostics(src)
                 if d.rule == "SC104"]
        assert "Widget.careless->Widget.read" in found
        assert "Widget.careful->Widget.read" not in found

    def test_caller_contract_satisfies_callee(self):
        src = (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
            "    def read(self):\n"
            '        """Lock held."""\n'
            "        return self._items\n"
            "    def read_twice(self):\n"
            '        """Also under contract. Lock held."""\n'
            "        return self.read() + self.read()\n"
        )
        assert keys(src, "SC104") == []

    def test_undeclared_registry_field_reported(self):
        # A registry class that drops a declared field from its
        # decorator drifts from the DESIGN table.
        src = (
            "@guarded_by(lock='_lock')\n"
            "class UnitStore:\n"
            '    """Doc."""\n'
            "    pass\n"
        )
        assert "SC104:src/repro/somewhere.py:UnitStore._units:undeclared" \
            in keys(src, "SC104")

    def test_unregistered_field_on_registry_class_reported(self):
        src = (
            "@guarded_by('_units', '_bogus', lock='_lock')\n"
            "class UnitStore:\n"
            '    """Doc."""\n'
        )
        assert "SC104:src/repro/somewhere.py:UnitStore._bogus:unregistered" \
            in keys(src, "SC104")

    def test_uncontracted_nonregistry_field_reported(self):
        src = (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """No contract anywhere."""\n'
        )
        assert "SC104:src/repro/somewhere.py:Widget._items:uncontracted" \
            in keys(src, "SC104")


class TestCheckerMechanics:
    def test_diagnostic_keys_are_line_number_free(self):
        src = TestSC101GuardedAccess.UNSAFE
        (first,) = [d for d in diagnostics(src) if d.rule == "SC101"]
        shifted = [
            d for d in static.check_sources(
                [("src/repro/somewhere.py", DOC + "\n\n" + src)]
            )
            if d.rule == "SC101"
        ]
        assert [d.key for d in shifted] == [first.key]
        assert shifted[0].line != first.line

    def test_analysis_package_paths_are_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "analysis"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(
            DOC
            + "@guarded_by('_f', lock='_lock')\n"
            + "class W:\n"
            + '    """Doc."""\n'
            + "    def g(self):\n"
            + '        """D."""\n'
            + "        return self._f\n"
        )
        assert static.check_paths([str(tmp_path)]) == []

    def test_multiple_files_form_one_program(self):
        # Cross-module resolution: the class lives in one file, the
        # caller in another.
        files = [
            ("src/repro/a.py", DOC + (
                "@guarded_by('_items', lock='_lock')\n"
                "class Widget:\n"
                '    """Doc."""\n'
                "    def read(self):\n"
                '        """Lock held."""\n'
                "        return self._items\n"
            )),
            ("src/repro/b.py", DOC + (
                "class Holder:\n"
                '    """Doc."""\n'
                "    def __init__(self):\n"
                "        self._w = Widget()\n"
                "    def use(self):\n"
                '        """No lock across modules."""\n'
                "        return self._w.read()\n"
            )),
        ]
        found = [d.symbol for d in static.check_sources(files)
                 if d.rule == "SC104"]
        assert "Holder.use->Widget.read" in found


class TestRepoCleanliness:
    def test_src_repro_is_clean_with_committed_baseline(
        self, monkeypatch
    ):
        """The same gate CI runs: zero new repro-check violations."""
        monkeypatch.chdir(REPO_ROOT)
        assert static.main([]) == 0

    def test_committed_baseline_matches_current_findings(
        self, monkeypatch
    ):
        """Every committed suppression still fires (no stale entries)
        and nothing new fires — the baseline is exactly the current
        report."""
        monkeypatch.chdir(REPO_ROOT)
        found = {d.key for d in static.check_paths(["src/repro"])}
        assert found == load_baseline(".repro-check-baseline.json")

    def test_accepted_suppressions_are_the_documented_ones(self):
        """The only accepted imprecision is IoStats.merge's id-ordered
        local lock aliasing (documented in docs/ANALYSIS.md)."""
        baseline = load_baseline(
            os.path.join(REPO_ROOT, ".repro-check-baseline.json")
        )
        assert baseline
        for key in baseline:
            assert key.startswith("SC101:src/repro/io/disk.py:IoStats.merge:")
