"""Smoke tests: the shipped examples must actually run.

The fast examples run in-process; the heavier ones are exercised through
their building blocks elsewhere in the suite and are only import-checked
here (keeping the suite quick while guaranteeing no example rots).
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

ALL_EXAMPLES = [
    "quickstart.py",
    "batch_movie.py",
    "interactive_explorer.py",
    "parallel_render.py",
    "simulate_platforms.py",
    "client_server_explorer.py",
    "fluid_quicklook.py",
    "deadlock_sanitizer.py",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_exists_and_imports(name):
    path = os.path.join(EXAMPLES_DIR, name)
    assert os.path.exists(path), f"missing example {name}"
    module = load_example(name)
    assert callable(module.main)
    # Every example documents itself.
    assert module.__doc__ and len(module.__doc__) > 80


def test_quickstart_runs(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "pressure buffer 80000 bytes" in out
    assert "units prefetched: 2" in out


def test_fluid_quicklook_runs(capsys):
    load_example("fluid_quicklook.py").main()
    out = capsys.readouterr().out
    assert "rendered 6 frames" in out
    assert "units prefetched in background: 6" in out


def test_deadlock_sanitizer_runs(capsys):
    load_example("deadlock_sanitizer.py").main()
    out = capsys.readouterr().out
    assert "predictor verdict" in out
    assert "would deadlock" in out
    assert "GodivaDeadlockError raised" in out
    assert "pipeline unwedged" in out


def test_interactive_explorer_runs(capsys):
    load_example("interactive_explorer.py").main()
    out = capsys.readouterr().out
    assert "LRU eviction" in out
    assert "scan" in out
