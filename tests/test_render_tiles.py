"""Bit-identity of the tiled-parallel compute plane.

The contract under test (DESIGN.md, compute plane): for any op-set,
memory budget, and mode, frames produced with ``compute_workers > 1``
are **byte-for-byte identical** to the serial build's — tiling, chunked
compositing, helping waiters, and frame pipelining change the schedule,
never the pixels.

Marked ``races`` so the sanitizer job replays the threaded paths under
the lockset race detector and lock-order graph.
"""

import numpy as np
import pytest

from repro.core.compute import ComputePool
from repro.core.database import GBO
from repro.errors import DatabaseClosedError
from repro.viz.camera import Camera
from repro.viz.colormap import Colormap
from repro.viz.isosurface import TriangleSoup
from repro.viz.render import Renderer
from repro.viz.voyager import Voyager, VoyagerConfig

pytestmark = pytest.mark.races


def run_frames(manifest, test, compute_workers, mode="TG",
               mem_mb=384.0, snapshot_indices=None):
    """Run one Voyager pass, capturing every frame in memory."""
    config = VoyagerConfig(
        data_dir=manifest.directory,
        test=test,
        mode=mode,
        mem_mb=mem_mb,
        compute_workers=compute_workers,
        render=True,
        snapshot_indices=snapshot_indices,
    )
    voyager = Voyager(config)
    frames = []
    voyager._maybe_write_image = (
        lambda step, image, images: frames.append(image.copy())
    )
    result = voyager.run()
    return frames, result


class TestVoyagerBitIdentity:
    @pytest.mark.parametrize("test", ["simple", "medium", "complex"])
    def test_tiled_parallel_matches_serial(self, small_dataset, test):
        serial, _ = run_frames(small_dataset, test, 1)
        tiled, result = run_frames(small_dataset, test, 4)
        assert len(serial) == len(tiled) == 4
        for a, b in zip(serial, tiled):
            assert np.array_equal(a, b)
        assert result.gbo_stats["compute_tasks"] > 0

    def test_identity_under_squeezed_budget(self, small_dataset):
        # A budget tight enough to force evictions between snapshots:
        # the lookahead must degrade to the serial schedule (its
        # try_wait_unit misses) without deadlocking or diverging.
        serial, _ = run_frames(small_dataset, "complex", 1, mem_mb=24.0)
        tiled, _ = run_frames(small_dataset, "complex", 4, mem_mb=24.0)
        for a, b in zip(serial, tiled):
            assert np.array_equal(a, b)

    def test_identity_in_original_mode(self, small_dataset):
        # The O build has no GBO; the standalone pool still tiles.
        serial, _ = run_frames(small_dataset, "medium", 1, mode="O")
        tiled, _ = run_frames(small_dataset, "medium", 4, mode="O")
        for a, b in zip(serial, tiled):
            assert np.array_equal(a, b)

    def test_identity_across_modes(self, small_dataset):
        o_frames, _ = run_frames(small_dataset, "simple", 4, mode="O")
        tg_frames, _ = run_frames(small_dataset, "simple", 4, mode="TG")
        for a, b in zip(o_frames, tg_frames):
            assert np.array_equal(a, b)

    def test_identity_with_revisits(self, small_dataset):
        # Revisits exercise the frame cache (pool skipped entirely) and
        # the finish/delete bookkeeping under the lookahead.
        schedule = [0, 1, 0, 2, 2, 1]
        serial, r1 = run_frames(small_dataset, "simple", 1,
                                snapshot_indices=schedule)
        tiled, r4 = run_frames(small_dataset, "simple", 4,
                               snapshot_indices=schedule)
        assert len(serial) == len(tiled) == len(schedule)
        for a, b in zip(serial, tiled):
            assert np.array_equal(a, b)
        assert r4.triangles == r1.triangles

    def test_written_images_byte_identical(self, small_dataset,
                                           tmp_path):
        # The on-disk artifacts, not just the in-memory arrays.
        for workers, sub in ((1, "serial"), (4, "tiled")):
            config = VoyagerConfig(
                data_dir=small_dataset.directory,
                test="simple",
                mode="TG",
                compute_workers=workers,
                out_dir=str(tmp_path / sub),
                steps=2,
            )
            Voyager(config).run()
        for name in sorted(p.name for p in (tmp_path / "serial").iterdir()):
            a = (tmp_path / "serial" / name).read_bytes()
            b = (tmp_path / "tiled" / name).read_bytes()
            assert a == b


def camera_64():
    return Camera(position=(0.0, -5.0, 0.0), look_at=(0.0, 0.0, 0.0),
                  up=(0, 0, 1), width=64, height=64)


def random_soup(n, seed, spread=2.0, behind=0):
    rng = np.random.default_rng(seed)
    verts = rng.uniform(-spread, spread, size=(n, 3, 3))
    if behind:
        # Push one vertex of the first `behind` triangles behind the
        # camera (y <= -5 is behind a camera at y=-5 looking at +y).
        verts[:behind, 0, 1] = -6.0
    values = rng.uniform(0.0, 1.0, size=(n, 3))
    return TriangleSoup(verts, values)


class TestRendererBitIdentity:
    def draw_both(self, soup):
        serial = Renderer(camera_64())
        serial.draw(soup, Colormap("rainbow"))
        with ComputePool(4, spawn_threads=2) as pool:
            tiled = Renderer(camera_64(), pool=pool)
            tiled.draw(soup, Colormap("rainbow"))
        return serial, tiled

    def test_random_soup_identical(self):
        serial, tiled = self.draw_both(random_soup(200, seed=7))
        assert np.array_equal(serial._zbuffer, tiled._zbuffer)
        assert np.array_equal(serial._frame, tiled._frame)
        assert np.array_equal(serial.image(), tiled.image())

    def test_duplicate_coplanar_triangles_tie_break(self):
        # Identical triangles produce identical depths at every covered
        # pixel: the serial rule keeps the *first* submission (strict
        # z < zbuffer). The tiled path must pick the same winner.
        base = random_soup(8, seed=3)
        dup = TriangleSoup(
            np.concatenate([base.vertices, base.vertices]),
            np.concatenate([base.values, 1.0 - base.values]),
        )
        serial, tiled = self.draw_both(dup)
        assert np.array_equal(serial.image(), tiled.image())

    def test_near_plane_cull_parity(self):
        soup = random_soup(50, seed=11, behind=10)
        serial, tiled = self.draw_both(soup)
        assert serial.triangles_culled == tiled.triangles_culled == 10
        assert np.array_equal(serial.image(), tiled.image())

    def test_serial_pool_uses_serial_path(self):
        # A workers=1 pool is not parallel: the renderer must take the
        # plain serial loop, not the tiled one.
        pool = ComputePool(1)
        renderer = Renderer(camera_64(), pool=pool)
        renderer.draw(random_soup(10, seed=1), Colormap("gray"))
        assert pool.stats.compute_tasks == 0
        pool.close()


class TestTryWaitUnit:
    def test_miss_on_unknown_unit(self, gbo):
        assert gbo.try_wait_unit("nope") is False

    def test_hit_pins_resident_unit(self, gbo):
        gbo.add_unit("u", lambda db, name: None)
        gbo.wait_unit("u")
        gbo.finish_unit("u")
        before = gbo.stats.wait_hits
        assert gbo.try_wait_unit("u") is True
        assert gbo.stats.wait_hits == before + 1
        # The pin must keep the unit out of the evictable set.
        assert "u" not in gbo._mem.policy
        gbo.finish_unit("u")

    def test_raises_once_closed(self, gbo):
        gbo.close()
        with pytest.raises(DatabaseClosedError):
            gbo.try_wait_unit("u")


class TestEnginePool:
    def test_gbo_owns_a_compute_pool(self):
        with GBO(mem_mb=32, compute_workers=3) as database:
            assert database.compute_workers == 3
            assert database.compute.parallel
            assert database.compute.submit(lambda: 5).wait() == 5
        assert database.compute.closed

    def test_compute_workers_validated(self):
        with pytest.raises(ValueError):
            GBO(mem_mb=32, compute_workers=0)

    def test_default_pool_is_serial(self, gbo):
        assert gbo.compute_workers == 1
        assert not gbo.compute.parallel
