"""Multi-tenant service: sessions, budgets, admission, async clients.

Collected into the ``races`` sanitizer job (file name prefix), so under
``REPRO_ANALYSIS=1`` every lock the service layer shares with the
engine is tracked and the lock-order graph + lockset tracker are
checked after each test.
"""

import asyncio
import threading
import time

import pytest

from repro.core.types import DataType
from repro.errors import (
    AdmissionError,
    DatabaseClosedError,
    SchemaError,
)
from repro.service import (
    GodivaService,
    TENANT_PREFIX,
    scoped_name,
    tenant_of,
    unscoped_name,
)
from repro.service.aio import AsyncGodivaClient
from repro.simulate.tenants import (
    TenantSpec,
    payload_read_fn,
    run_tenant_workload,
)

KB = 1024
MB = 1024 * 1024


@pytest.fixture
def service():
    svc = GodivaService(mem_mb=16, io_workers=2, client_workers=8)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# Name scoping
# ----------------------------------------------------------------------
class TestScoping:
    def test_scoped_roundtrip(self):
        scoped = scoped_name("alice", "snap:0001")
        assert scoped == "tenant::alice::snap:0001"
        assert unscoped_name("alice", scoped) == "snap:0001"
        assert tenant_of(scoped) == "alice"

    def test_tenant_of_derived_entry(self):
        assert tenant_of("derived::tenant::bob|frame|sig") == "bob"
        assert tenant_of("derived::frame|sig") is None
        assert tenant_of("snap:0001") is None

    def test_invalid_tenant_ids_rejected(self, service):
        for bad in ("", "a:b", "a|b", "a::b", "t e n"):
            with pytest.raises(AdmissionError):
                service.create_session(bad)

    def test_same_unit_name_isolated_across_tenants(self, service):
        seen = []

        def read_fn(sess, name):
            seen.append((sess.tenant, name))
            payload_read_fn(4 * KB)(sess, name)

        with service.create_session("a") as a, \
                service.create_session("b") as b:
            a.acquire("u0", read_fn).finish()
            b.acquire("u0", read_fn).finish()
            # Each callback saw its own session and the *local* name.
            assert ("a", "u0") in seen and ("b", "u0") in seen
            assert a.list_units() == [("u0", a.unit_state("u0"))]
            # Engine-side, the two units are distinct.
            assert a.resident_bytes_of("u0") > 0
            assert b.resident_bytes_of("u0") > 0

    def test_record_types_scoped_fields_shared(self, service):
        with service.create_session("a") as a, \
                service.create_session("b") as b:
            a.acquire("u", payload_read_fn(KB)).finish()
            assert a.has_record_type("blob")
            assert not b.has_record_type("blob")
            # Field types are a shared namespace: a conflicting
            # redefinition fails exactly as it would inside one GBO.
            assert a.has_field_type("blob key")
            with pytest.raises(SchemaError):
                b.define_field("blob key", DataType.DOUBLE)

    def test_session_records_queryable(self, service):
        with service.create_session("a") as a:
            a.acquire("u7", payload_read_fn(2 * KB)).finish()
            key = "u7".ljust(24)[:24].encode()
            rec = a.get_record("blob", [key])
            assert rec is not None
            assert a.get_field_buffer_size(
                "blob", "blob payload", [key]
            ) == 2 * KB

    def test_paper_gbo_surface_untouched_by_service_import(self):
        # The single-process facade must stay byte-for-byte paper-
        # faithful: importing the service adds nothing to GBO.
        from repro.core.database import GBO

        assert not any(
            name.startswith("tenant") or "session" in name.lower()
            for name in vars(GBO)
        )


# ----------------------------------------------------------------------
# Budget isolation & fair eviction
# ----------------------------------------------------------------------
class TestBudgetIsolation:
    def test_thrasher_cannot_evict_steady_below_carveout(self):
        with GodivaService(mem_mb=16, io_workers=1) as svc:
            result = run_tenant_workload(svc, [
                TenantSpec("steady", carveout_mb=4, unit_mb=0.5,
                           n_units=6, rounds=3),
                TenantSpec("thrash", carveout_mb=4, unit_mb=1.0,
                           n_units=24, rounds=3),
            ])
            steady = result.outcomes["steady"]
            thrash = result.outcomes["thrash"]
            # The thrasher churned the policy hard...
            assert thrash.evictions > 0
            # ...but the steady tenant, inside its carve-out, lost
            # nothing and nobody was unfairly evicted.
            assert steady.evictions == 0
            assert result.total_unfair_evictions == 0
            assert result.isolation_held
            assert steady.resident_bytes_end <= steady.carveout_bytes

    def test_derived_entries_charged_to_owner(self, service):
        import numpy as np

        with service.create_session("a") as a, \
                service.create_session("b") as b:
            a.derived.put(("k",), np.zeros(1024))
            assert a.derived.get(("k",)) is not None
            # b's identical key resolves in b's scope: a miss.
            assert b.derived.get(("k",)) is None
            report = service.tenant_report()
            assert report["a"]["used_bytes"] >= 8 * 1024
            assert report["b"]["used_bytes"] == 0

    def test_session_close_drops_only_own_footprint(self, service):
        import numpy as np

        a = service.create_session("a")
        b = service.create_session("b")
        a.acquire("u", payload_read_fn(4 * KB)).finish()
        b.acquire("u", payload_read_fn(4 * KB)).finish()
        a.derived.put(("d",), np.zeros(256))
        b.derived.put(("d",), np.zeros(256))
        a.close()
        report = service.tenant_report()
        assert "a" not in report
        assert report["b"]["used_bytes"] >= 4 * KB + 256 * 8
        assert b.derived.get(("d",)) is not None
        b.close()

    def test_tenant_aware_policy_preserves_recency_of_skipped(self):
        # Skipping a protected tenant's candidates must not disturb
        # their LRU positions.
        from repro.core.cache import LruEvictionPolicy
        from repro.analysis.primitives import TrackedLock
        from repro.service.tenancy import (
            TenantAwareEvictionPolicy,
            TenantLedger,
        )

        lock = TrackedLock("test-ledger")
        ledger = TenantLedger()

        class FakeUnit:
            def __init__(self, nbytes):
                self.resident_bytes = nbytes

        units = {
            scoped_name("safe", "u0"): FakeUnit(10),
            scoped_name("pig", "u0"): FakeUnit(100),
            scoped_name("pig", "u1"): FakeUnit(100),
        }
        ledger.bind(lock=lock, units=units, derived=None)
        with lock:
            ledger.register("safe", 1000)   # way under carve-out
            ledger.register("pig", 50)      # way over carve-out
        policy = TenantAwareEvictionPolicy(LruEvictionPolicy(), ledger)
        for name in units:
            policy.add(name)
        with lock:
            victim = policy.victim()
        # LRU head is safe's unit, but pig is over carve-out: pig's
        # oldest entry goes first; safe's position is untouched.
        assert tenant_of(victim) == "pig"
        assert scoped_name("safe", "u0") in policy
        assert list(policy)[0] == scoped_name("safe", "u0")
        with lock:
            snap = ledger.snapshot()
        assert snap["pig"]["evictions"] == 1
        assert snap["safe"]["unfair_evictions"] == 0


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_reject_when_oversubscribed(self, service):
        service.create_session("a", mem_mb=10)
        with pytest.raises(AdmissionError, match="does not fit"):
            service.create_session("b", mem_mb=10, admission="reject")
        # Best-effort (no carve-out) sessions always fit.
        service.create_session("c")

    def test_single_carveout_larger_than_budget(self, service):
        with pytest.raises(AdmissionError, match="exceeds the global"):
            service.create_session("big", mem_mb=32)

    def test_duplicate_tenant_rejected(self, service):
        service.create_session("a")
        with pytest.raises(AdmissionError, match="already has a live"):
            service.create_session("a")

    def test_queue_admission_waits_for_capacity(self, service):
        first = service.create_session("a", mem_mb=12)
        admitted = []

        def queued_client():
            with service.create_session(
                "b", mem_mb=12, admission="queue", timeout=30.0
            ) as session:
                admitted.append(session.tenant)

        thread = threading.Thread(target=queued_client)
        thread.start()
        time.sleep(0.1)
        assert admitted == []   # still parked: no capacity yet
        first.close()           # frees the carve-out -> wakes the queue
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert admitted == ["b"]

    def test_queue_admission_times_out(self, service):
        service.create_session("a", mem_mb=12)
        t0 = time.monotonic()
        with pytest.raises(AdmissionError, match="timed out"):
            service.create_session(
                "b", mem_mb=12, admission="queue", timeout=0.2
            )
        assert time.monotonic() - t0 < 10.0

    def test_auto_tenant_names(self, service):
        s1 = service.create_session()
        s2 = service.create_session()
        assert s1.tenant != s2.tenant
        assert s1.tenant.startswith("tenant")


# ----------------------------------------------------------------------
# Close semantics (the PR-4 lost-wakeup suite, service edition)
# ----------------------------------------------------------------------
class TestCloseSemantics:
    def test_session_close_idempotent(self, service):
        session = service.create_session("a")
        session.close()
        session.close()
        with pytest.raises(DatabaseClosedError):
            session.add_unit("u", payload_read_fn(KB))

    def test_service_close_idempotent_and_concurrent(self):
        svc = GodivaService(mem_mb=8, io_workers=1)
        svc.create_session("a")
        errors = []

        def closer():
            try:
                svc.close()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert svc.closed

    def test_gbo_close_concurrent_callers_all_return(self):
        from repro.core.database import GBO

        gbo = GBO(mem_mb=8)
        done = []

        def closer():
            gbo.close()
            done.append(True)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert len(done) == 8
        assert gbo.closed

    def test_session_close_races_inflight_wait(self, service):
        # A wait blocked on a never-loading unit must surface
        # DatabaseClosedError when its session closes — never hang.
        gate = threading.Event()

        def slow_read(sess, name):
            gate.wait(10.0)
            payload_read_fn(KB)(sess, name)

        session = service.create_session("a")
        session.add_unit("slow", slow_read)
        session.add_unit("behind", payload_read_fn(KB))
        outcome = []

        def waiter():
            try:
                session.wait_unit("behind")
                outcome.append("returned")
            except DatabaseClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        session.close()
        gate.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert outcome and outcome[0] in ("closed", "returned")
        with pytest.raises(DatabaseClosedError):
            session.wait_unit("behind")

    def test_service_close_races_inflight_wait(self):
        svc = GodivaService(mem_mb=8, io_workers=1)
        gate = threading.Event()

        def slow_read(sess, name):
            gate.wait(10.0)
            payload_read_fn(KB)(sess, name)

        session = svc.create_session("a")
        session.add_unit("slow", slow_read)
        session.add_unit("behind", payload_read_fn(KB))
        outcome = []

        def waiter():
            try:
                session.wait_unit("behind")
                outcome.append("returned")
            except DatabaseClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        closer = threading.Thread(target=svc.close)
        closer.start()
        gate.set()
        thread.join(timeout=30.0)
        closer.join(timeout=30.0)
        assert not thread.is_alive() and not closer.is_alive()
        assert outcome and outcome[0] in ("closed", "returned")
        with pytest.raises(DatabaseClosedError):
            svc.create_session("late")

    def test_other_tenants_survive_a_session_close(self, service):
        a = service.create_session("a")
        b = service.create_session("b")
        b.acquire("keep", payload_read_fn(KB))
        a.close()
        # b's unit is still resident and readable.
        assert b.is_resident("keep")
        b.finish_unit("keep")
        b.close()

    def test_closed_session_units_are_gone(self, service):
        from repro.core.units import UnitState

        session = service.create_session("a")
        session.acquire("u", payload_read_fn(KB)).finish()
        assert session.resident_bytes_of("u") > 0
        session.close()
        # The tenant's unit was deleted (terminal) and its bytes freed.
        state = service._gbo.unit_state(scoped_name("a", "u"))
        assert state is UnitState.DELETED
        assert service._gbo.resident_bytes_of(scoped_name("a", "u")) == 0


# ----------------------------------------------------------------------
# Asyncio front-end
# ----------------------------------------------------------------------
class TestAsyncClients:
    def test_async_roundtrip(self, service):
        async def go():
            client = await AsyncGodivaClient.connect(
                service, "a", mem_mb=2
            )
            async with client:
                handle = await client.acquire(
                    "u0", payload_read_fn(2 * KB)
                )
                assert handle.is_resident
                assert await client.unit_state("u0") is not None
                await client.finish_unit("u0")
                await client.delete_unit("u0")
                report = await client.report()
                assert report["carveout_bytes"] == 2 * MB
            assert client.session.closed

        asyncio.run(go())

    def test_sixty_four_concurrent_clients(self):
        async def one_client(svc, i):
            client = await AsyncGodivaClient.connect(
                svc, f"c{i}", mem_bytes=16 * KB
            )
            async with client:
                for step in range(2):
                    name = f"u{step}"
                    await client.acquire(name, payload_read_fn(4 * KB))
                    await client.finish_unit(name)
                    await client.delete_unit(name)
            return i

        async def go():
            with GodivaService(mem_mb=32, io_workers=4,
                               client_workers=16) as svc:
                served = await asyncio.gather(
                    *(one_client(svc, i) for i in range(64))
                )
                assert sorted(served) == list(range(64))
                assert svc.session_count() == 0
                report = svc.tenant_report()
                assert report == {}

        asyncio.run(go())

    def test_async_admission_error_propagates(self, service):
        async def go():
            await AsyncGodivaClient.connect(service, "big", mem_mb=10)
            with pytest.raises(AdmissionError):
                await AsyncGodivaClient.connect(
                    service, "bigger", mem_mb=10
                )

        asyncio.run(go())

    def test_async_close_race_is_an_error_not_a_hang(self, service):
        async def go():
            client = await AsyncGodivaClient.connect(service, "a")
            gate = threading.Event()

            def slow_read(sess, name):
                gate.wait(10.0)
                payload_read_fn(KB)(sess, name)

            await client.add_unit("slow", slow_read)
            await client.add_unit("behind", payload_read_fn(KB))
            wait_task = asyncio.create_task(client.wait_unit("behind"))
            await asyncio.sleep(0.05)
            await client.close()
            gate.set()
            try:
                await asyncio.wait_for(wait_task, timeout=30.0)
            except DatabaseClosedError:
                pass

        asyncio.run(go())


# ----------------------------------------------------------------------
# Voyager over a session
# ----------------------------------------------------------------------
class TestVoyagerSession:
    def test_voyager_runs_against_session(self, small_dataset):
        from repro.viz.voyager import Voyager, VoyagerConfig

        with GodivaService(mem_mb=64, io_workers=2) as svc:
            with svc.create_session("viz", mem_mb=16) as session:
                config = VoyagerConfig(
                    data_dir=small_dataset.directory,
                    test="simple",
                    session=session,
                    render=False,
                    steps=2,
                )
                assert config.mode == "TG"
                result = Voyager(config).run()
                assert result.n_snapshots == 2
                assert result.triangles > 0
                report = svc.tenant_report()
                assert report["viz"]["unfair_evictions"] == 0

    def test_two_voyager_tenants_share_one_engine(self, small_dataset):
        from repro.viz.voyager import Voyager, VoyagerConfig

        with GodivaService(mem_mb=64, io_workers=2) as svc:
            results = []
            with svc.create_session("v1", mem_mb=8) as s1, \
                    svc.create_session("v2", mem_mb=8) as s2:
                for session in (s1, s2):
                    config = VoyagerConfig(
                        data_dir=small_dataset.directory,
                        test="simple",
                        session=session,
                        render=False,
                        steps=2,
                    )
                    results.append(Voyager(config).run())
            assert all(r.triangles > 0 for r in results)
            # Same dataset, same ops: identical geometry per tenant.
            assert results[0].triangles == results[1].triangles
