"""Unit tests for the instrumented concurrency primitives.

Two contracts matter: with analysis *disabled* the factories must hand
back the plain ``threading`` objects (the zero-cost promise the W1
benchmark relies on), and with analysis *enabled* the tracked flavours
must keep honest per-thread held-lock bookkeeping and enforce the
lock/condition usage contracts.
"""

import os
import subprocess
import sys
import threading

import pytest

import repro
from repro.analysis import primitives
from repro.analysis.lockorder import GLOBAL_GRAPH
from repro.errors import LockContractError

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

_PLAIN_LOCK_TYPE = type(threading.Lock())


@pytest.fixture
def analysis_on():
    """Instrumentation on for the test body; prior state restored."""
    was_enabled = primitives.analysis_enabled()
    primitives.enable()
    try:
        yield
    finally:
        if not was_enabled:
            primitives.disable()
        GLOBAL_GRAPH.reset()


@pytest.fixture
def analysis_off():
    """Instrumentation off for the test body; prior state restored."""
    was_enabled = primitives.analysis_enabled()
    primitives.disable()
    try:
        yield
    finally:
        if was_enabled:
            primitives.enable()


class TestDisabledFactories:
    def test_tracked_lock_is_plain_lock(self, analysis_off):
        lock = primitives.TrackedLock("unused-name")
        assert isinstance(lock, _PLAIN_LOCK_TYPE)

    def test_tracked_condition_is_plain_condition(self, analysis_off):
        lock = primitives.TrackedLock()
        cond = primitives.TrackedCondition(lock)
        assert isinstance(cond, threading.Condition)
        assert isinstance(primitives.TrackedCondition(),
                          threading.Condition)

    def test_assert_lock_held_is_noop_for_plain_locks(self, analysis_off):
        lock = primitives.TrackedLock()
        primitives.assert_lock_held(lock, "anything")  # never raises

    def test_make_held_checker_returns_shared_noop(self, analysis_off):
        lock = primitives.TrackedLock()
        checker = primitives.make_held_checker(lock, "anything")
        assert checker is primitives._noop
        assert checker() is None


class TestTrackedLock:
    def test_enabled_factory_returns_tracked_objects(self, analysis_on):
        lock = primitives.TrackedLock("my-lock")
        assert isinstance(lock, primitives._TrackedLock)
        assert lock.name == "my-lock"
        cond = primitives.TrackedCondition(lock)
        assert isinstance(cond, primitives._TrackedCondition)
        assert cond.name == "my-lock.cond"

    def test_held_bookkeeping(self, analysis_on):
        lock = primitives.TrackedLock("held-test")
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert lock.locked()
        assert not lock.held_by_current_thread()
        assert not lock.locked()

    def test_lockset_is_outermost_first(self, analysis_on):
        outer = primitives.TrackedLock("outer")
        inner = primitives.TrackedLock("inner")
        assert primitives.current_lockset() == ()
        with outer:
            with inner:
                assert primitives.current_lockset() == (outer, inner)
            assert primitives.current_lockset() == (outer,)
        assert primitives.current_lockset() == ()

    def test_lockset_is_per_thread(self, analysis_on):
        lock = primitives.TrackedLock("mine")
        seen = []

        def observer():
            seen.append(primitives.current_lockset())

        with lock:
            thread = threading.Thread(target=observer)
            thread.start()
            thread.join()
        assert seen == [()]

    def test_release_unheld_raises(self, analysis_on):
        lock = primitives.TrackedLock("never-held")
        with pytest.raises(LockContractError, match="never-held"):
            lock.release()

    def test_release_from_wrong_thread_raises(self, analysis_on):
        lock = primitives.TrackedLock("other-thread")
        lock.acquire()
        errors = []

        def releaser():
            try:
                lock.release()
            except LockContractError as exc:
                errors.append(exc)

        thread = threading.Thread(target=releaser)
        thread.start()
        thread.join()
        lock.release()
        assert len(errors) == 1

    def test_assert_lock_held(self, analysis_on):
        lock = primitives.TrackedLock("contract")
        with pytest.raises(LockContractError, match="Lock held"):
            primitives.assert_lock_held(lock, "settling a unit")
        with lock:
            primitives.assert_lock_held(lock, "settling a unit")

    def test_make_held_checker_enforces(self, analysis_on):
        lock = primitives.TrackedLock("checker")
        checker = primitives.make_held_checker(lock, "the hot path")
        with pytest.raises(LockContractError, match="the hot path"):
            checker()
        with lock:
            checker()


class TestTrackedCondition:
    def test_notify_without_lock_raises(self, analysis_on):
        cond = primitives.TrackedCondition(primitives.TrackedLock("c1"))
        with pytest.raises(LockContractError, match="notify"):
            cond.notify()
        with pytest.raises(LockContractError, match="notify_all"):
            cond.notify_all()

    def test_wait_without_lock_raises(self, analysis_on):
        cond = primitives.TrackedCondition(primitives.TrackedLock("c2"))
        with pytest.raises(LockContractError, match="wait"):
            cond.wait(0.01)

    def test_wait_keeps_bookkeeping_across_release_reacquire(
        self, analysis_on
    ):
        lock = primitives.TrackedLock("c3")
        cond = primitives.TrackedCondition(lock)
        ready = []

        def producer():
            with cond:
                ready.append(1)
                cond.notify_all()

        thread = threading.Thread(target=producer)
        with cond:
            assert lock.held_by_current_thread()
            thread.start()
            assert cond.wait_for(lambda: ready, timeout=5.0)
            # wait() released and reacquired; the ledger must agree.
            assert lock.held_by_current_thread()
        thread.join()
        assert not lock.held_by_current_thread()

    def test_wait_for_timeout_returns_predicate_value(self, analysis_on):
        cond = primitives.TrackedCondition(primitives.TrackedLock("c4"))
        with cond:
            assert cond.wait_for(lambda: False, timeout=0.05) is False


class TestEnvironmentFlag:
    @pytest.mark.parametrize("flag,expected", [
        ("1", "_TrackedLock"),
        ("0", _PLAIN_LOCK_TYPE.__name__),
        ("", _PLAIN_LOCK_TYPE.__name__),
    ])
    def test_env_flag_selects_factory_flavour(self, flag, expected):
        code = (
            "from repro.analysis import primitives; "
            "print(type(primitives.TrackedLock()).__name__)"
        )
        env = dict(os.environ)
        env[primitives.ENV_FLAG] = flag
        env["PYTHONPATH"] = SRC_DIR
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
        )
        assert result.stdout.strip() == expected
