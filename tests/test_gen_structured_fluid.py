"""The Table 1 / Figure 2 fluid-block example — exact sizes."""

from repro.gen.structured_fluid import (
    fluid_block_arrays,
    make_fluid_block_record,
)


def test_figure2_exact_sizes():
    """Figure 2: x/y coords 808 bytes (101 doubles); pressure and
    temperature 80 000 bytes (10 000 doubles)."""
    arrays = fluid_block_arrays()
    assert arrays["x coordinates"].nbytes == 808
    assert arrays["y coordinates"].nbytes == 808
    assert arrays["pressure"].nbytes == 80_000
    assert arrays["temperature"].nbytes == 80_000


def test_custom_grid_sizes():
    arrays = fluid_block_arrays(nx=10, ny=20)
    assert len(arrays["x coordinates"]) == 11
    assert len(arrays["y coordinates"]) == 21
    assert len(arrays["pressure"]) == 200


def test_physical_plausibility():
    arrays = fluid_block_arrays()
    assert arrays["pressure"].min() > 0
    assert arrays["temperature"].min() >= 300.0


def test_block_index_shifts_domain():
    a = fluid_block_arrays(block_index=1)
    b = fluid_block_arrays(block_index=2)
    assert b["x coordinates"][0] > a["x coordinates"][0]


def test_make_record_in_gbo(gbo):
    record = make_fluid_block_record(gbo, block_index=1, t=25e-6)
    assert record.committed
    keys = [b"block_0001$", b"0.000025$"]
    assert gbo.get_field_buffer_size("fluid", "pressure", keys) == 80_000
    assert gbo.get_field_buffer_size(
        "fluid", "x coordinates", keys
    ) == 808
    buf = gbo.get_field_buffer("fluid", "temperature", keys)
    assert buf.min() >= 300.0


def test_multiple_blocks_coexist(gbo):
    for index in (1, 2, 3):
        make_fluid_block_record(gbo, block_index=index, t=25e-6)
    assert gbo.record_count("fluid") == 3


def test_generate_fluid_dataset_and_read_fn(tmp_path, gbo):
    from repro.gen.structured_fluid import (
        generate_fluid_dataset,
        make_fluid_read_fn,
    )

    paths = generate_fluid_dataset(str(tmp_path), n_blocks=2,
                                   n_steps=3, nx=10, ny=10)
    assert len(paths) == 3
    read_fn = make_fluid_read_fn()
    for path in paths:
        gbo.add_unit(path, read_fn)
    for path in paths:
        gbo.wait_unit(path)
    # 2 blocks x 3 steps, all individually keyed.
    assert gbo.record_count("fluid") == 6


def test_fluid_dataset_values_match_direct_generation(tmp_path, gbo):
    import numpy as np

    from repro.gen.snapshot import block_key, timestep_id
    from repro.gen.structured_fluid import (
        generate_fluid_dataset,
        make_fluid_read_fn,
    )

    paths = generate_fluid_dataset(str(tmp_path), n_blocks=1,
                                   n_steps=1, nx=10, ny=10)
    gbo.read_unit(paths[0], make_fluid_read_fn())
    keys = [block_key("block_0001").encode(),
            timestep_id(25e-6).encode()]
    stored = gbo.get_field_buffer("fluid", "pressure", keys)
    expected = fluid_block_arrays(10, 10, 25e-6, 1)["pressure"]
    assert np.array_equal(stored, expected)
