"""Lock-order graph: potential-deadlock (cycle) detection.

The graph records every observed "acquired B while holding A" nesting;
a cycle means two code paths take the same locks in opposite orders —
a deadlock that is real even if the observed runs never interleaved
fatally. Exercised both directly (synthetic edges) and end-to-end
through tracked locks in two threads.
"""

import threading

import pytest

from repro.analysis import primitives
from repro.analysis.lockorder import GLOBAL_GRAPH, LockOrderGraph
from repro.errors import LockOrderViolation


def record(graph, first, second, thread="T"):
    graph.record(
        first, second,
        first_stack=f"  at acquire({first})\n",
        second_stack=f"  at acquire({second})\n",
        thread_name=thread,
    )


class TestGraphMechanics:
    def test_consistent_order_is_acyclic(self):
        graph = LockOrderGraph()
        record(graph, "A", "B")
        record(graph, "A", "B")
        record(graph, "B", "C")
        assert graph.find_cycles() == []
        assert "acyclic" in graph.format_cycles()
        graph.check()  # must not raise

    def test_repeated_edge_counts_one_exemplar(self):
        graph = LockOrderGraph()
        record(graph, "A", "B")
        record(graph, "A", "B")
        edges = graph.edges()
        assert len(edges) == 1
        assert edges[0].count == 2
        assert "seen 2x" in edges[0].describe()

    def test_abba_cycle_detected_with_both_stacks(self):
        graph = LockOrderGraph()
        record(graph, "A", "B", thread="t-forward")
        record(graph, "B", "A", thread="t-backward")
        cycles = graph.find_cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 2
        report = graph.format_cycles(cycles)
        assert "POTENTIAL DEADLOCK" in report
        assert "acquire(A)" in report and "acquire(B)" in report
        assert "t-forward" in report and "t-backward" in report
        with pytest.raises(LockOrderViolation, match="POTENTIAL DEADLOCK"):
            graph.check()

    def test_cycle_not_reported_twice_from_different_starts(self):
        graph = LockOrderGraph()
        record(graph, "A", "B")
        record(graph, "B", "A")
        # The DFS visits from every node; the A->B->A cycle must be
        # deduplicated, not reported once per starting point.
        assert len(graph.find_cycles()) == 1

    def test_three_lock_cycle(self):
        graph = LockOrderGraph()
        record(graph, "A", "B")
        record(graph, "B", "C")
        record(graph, "C", "A")
        cycles = graph.find_cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 3
        assert "A -> B -> C -> A" in graph.format_cycles(cycles)

    def test_reset_clears_edges(self):
        graph = LockOrderGraph()
        record(graph, "A", "B")
        record(graph, "B", "A")
        graph.reset()
        assert graph.edges() == []
        graph.check()  # must not raise


class TestTrackedLockIntegration:
    """End-to-end: TrackedLock feeds GLOBAL_GRAPH automatically."""

    @pytest.fixture
    def analysis_on(self):
        was_enabled = primitives.analysis_enabled()
        primitives.enable()
        GLOBAL_GRAPH.reset()
        try:
            yield
        finally:
            if not was_enabled:
                primitives.disable()
            GLOBAL_GRAPH.reset()

    def test_nested_acquire_records_edge(self, analysis_on):
        first = primitives.TrackedLock("io.first")
        second = primitives.TrackedLock("io.second")
        with first:
            with second:
                pass
        edges = {(e.first, e.second) for e in GLOBAL_GRAPH.edges()}
        assert ("io.first", "io.second") in edges
        GLOBAL_GRAPH.check()  # one order only: acyclic

    def test_opposite_orders_in_two_threads_flagged(self, analysis_on):
        lock_a = primitives.TrackedLock("order.a")
        lock_b = primitives.TrackedLock("order.b")

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        # Run sequentially: the sanitizer's whole point is that the
        # conflicting order is caught without the fatal interleaving.
        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()

        with pytest.raises(LockOrderViolation) as excinfo:
            GLOBAL_GRAPH.check()
        message = str(excinfo.value)
        assert "POTENTIAL DEADLOCK" in message
        assert "order.a" in message and "order.b" in message
        assert "then acquired" in message  # both stacks shown
