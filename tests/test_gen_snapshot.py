"""Snapshot dataset generation: layout, manifest, key formats."""

import os

import numpy as np
import pytest

from repro.gen.quantities import ELEMENT_FIELDS, NODE_FIELDS
from repro.gen.snapshot import (
    BLOCK_ID_SIZE,
    TIMESTEP_ID_SIZE,
    SnapshotSpec,
    block_key,
    load_manifest,
    timestep_id,
)
from repro.gen.titan import TitanConfig
from repro.io.sdf import SdfReader


class TestKeyFormats:
    def test_timestep_id_is_nine_bytes(self):
        """Figure 2: '0.000025$' — 9 bytes with the terminator."""
        tsid = timestep_id(25e-6)
        assert tsid == "0.000025$"
        assert len(tsid) == TIMESTEP_ID_SIZE

    def test_timestep_id_truncates_precision(self):
        assert len(timestep_id(1.0 / 3.0)) == TIMESTEP_ID_SIZE

    def test_block_key_is_eleven_bytes(self):
        """Figure 2: 'block_0001$' — 11 bytes with the terminator."""
        key = block_key("block_0001")
        assert key == "block_0001$"
        assert len(key) == BLOCK_ID_SIZE


class TestSpecValidation:
    def test_bad_steps(self):
        with pytest.raises(ValueError):
            SnapshotSpec(config=TitanConfig.scaled(0.1), n_steps=0)

    def test_bad_files(self):
        with pytest.raises(ValueError):
            SnapshotSpec(config=TitanConfig.scaled(0.1),
                         files_per_snapshot=0)

    def test_step_time(self):
        spec = SnapshotSpec(config=TitanConfig.scaled(0.1), dt=2.0)
        assert spec.step_time(0) == 2.0
        assert spec.step_time(3) == 8.0


class TestGeneratedDataset:
    def test_manifest_roundtrip(self, small_dataset):
        reloaded = load_manifest(small_dataset.directory)
        assert reloaded.n_blocks == small_dataset.n_blocks
        assert reloaded.block_ids == small_dataset.block_ids
        assert len(reloaded.snapshots) == len(small_dataset.snapshots)
        assert reloaded.snapshots[0].tsid == \
            small_dataset.snapshots[0].tsid

    def test_files_per_snapshot(self, small_dataset):
        for entry in small_dataset.snapshots:
            assert len(entry.files) == 2
            for path in small_dataset.snapshot_paths(entry.step):
                assert os.path.exists(path)

    def test_every_block_in_exactly_one_file(self, small_dataset):
        seen = []
        for path in small_dataset.snapshot_paths(0):
            with SdfReader(path) as reader:
                attrs = reader.file_attributes()
                seen.extend(
                    b for b in attrs["block_ids"].split(",") if b
                )
        assert sorted(seen) == sorted(small_dataset.block_ids)

    def test_file_contains_all_fields_per_block(self, small_dataset):
        path = small_dataset.snapshot_paths(0)[0]
        with SdfReader(path) as reader:
            attrs = reader.file_attributes()
            block = attrs["block_ids"].split(",")[0]
            names = set(reader.dataset_names)
            for field in (
                ["coords", "conn"] + list(NODE_FIELDS)
                + list(ELEMENT_FIELDS)
            ):
                assert f"{field}:{block}" in names

    def test_dataset_attrs_carry_keys(self, small_dataset):
        path = small_dataset.snapshot_paths(0)[0]
        tsid = small_dataset.snapshots[0].tsid
        with SdfReader(path) as reader:
            attrs = reader.file_attributes()
            block = attrs["block_ids"].split(",")[0]
            ds_attrs = reader.attributes(f"coords:{block}")
            assert ds_attrs["block_id"] == block
            assert ds_attrs["timestep"] == tsid

    def test_mesh_constant_fields_vary_across_steps(
        self, small_dataset
    ):
        block = small_dataset.block_ids[0]
        coords, velocities = [], []
        for step in range(2):
            path = small_dataset.snapshot_paths(step)[0]
            with SdfReader(path) as reader:
                coords.append(reader.read(f"coords:{block}"))
                velocities.append(reader.read(f"velocity:{block}"))
        assert np.array_equal(coords[0], coords[1])
        assert not np.allclose(velocities[0], velocities[1])

    def test_field_sizes_consistent(self, small_dataset):
        path = small_dataset.snapshot_paths(0)[0]
        with SdfReader(path) as reader:
            attrs = reader.file_attributes()
            block = attrs["block_ids"].split(",")[0]
            n_nodes = reader.info(f"coords:{block}").shape[0]
            n_tets = reader.info(f"conn:{block}").shape[0]
            assert reader.info(f"velocity:{block}").shape == \
                (n_nodes, 3)
            assert reader.info(f"ave_stress:{block}").shape == \
                (n_nodes,)
            assert reader.info(f"plastic_strain:{block}").shape == \
                (n_tets,)

    def test_cli_main(self, tmp_path):
        from repro.gen.snapshot import main

        out = str(tmp_path / "cli_dataset")
        code = main([
            "--out", out, "--scale", "0.1", "--steps", "2",
            "--files-per-snapshot", "2",
        ])
        assert code == 0
        manifest = load_manifest(out)
        assert len(manifest.snapshots) == 2
