"""repro-lint: each rule on synthetic sources, baseline mechanics, and
the repo-cleanliness gate CI enforces."""

import os

import pytest

from repro.analysis import lint
from repro.core.compat import PAPER_ALIASES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC = '"""Module docstring."""\n'


def rules(source, path="src/repro/somewhere.py"):
    return [v.rule for v in lint.lint_source(source, path)]


class TestRep101BareThreadingPrimitives:
    def test_threading_attribute_call_flagged(self):
        src = DOC + "import threading\nLOCK = threading.Lock()\n"
        assert rules(src) == ["REP101"]

    def test_imported_name_call_flagged(self):
        src = DOC + (
            "from threading import Condition\n"
            "COND = Condition()\n"
        )
        assert rules(src) == ["REP101"]

    def test_aliased_import_flagged(self):
        src = DOC + (
            "from threading import Lock as Mutex\n"
            "LOCK = Mutex()\n"
        )
        assert rules(src) == ["REP101"]

    def test_all_primitive_kinds_flagged(self):
        src = DOC + "import threading\n" + "\n".join(
            f"V{i} = threading.{kind}()" for i, kind in enumerate(
                ("Lock", "RLock", "Condition", "Semaphore")
            )
        ) + "\n"
        assert rules(src) == ["REP101"] * 4

    def test_analysis_package_is_exempt(self):
        src = DOC + "import threading\nLOCK = threading.Lock()\n"
        assert rules(src, "src/repro/analysis/primitives.py") == []

    def test_tracked_factories_are_clean(self):
        src = DOC + (
            "from repro.analysis.primitives import TrackedLock\n"
            "LOCK = TrackedLock()\n"
        )
        assert rules(src) == []


class TestRep102WaitOutsideWhile:
    def test_bare_wait_flagged(self):
        src = DOC + "def _f(cond):\n    cond.wait()\n"
        assert rules(src) == ["REP102"]

    def test_attribute_receiver_flagged(self):
        src = DOC + (
            "class _C:\n"
            "    def _g(self):\n"
            "        self._cond.wait(1.0)\n"
        )
        assert rules(src) == ["REP102"]

    def test_wait_inside_while_is_clean(self):
        src = DOC + (
            "def _f(cond, ready):\n"
            "    while not ready():\n"
            "        cond.wait()\n"
        )
        assert rules(src) == []

    def test_nested_def_does_not_inherit_while(self):
        src = DOC + (
            "def _f(cond):\n"
            "    while True:\n"
            "        def _g():\n"
            "            cond.wait()\n"
        )
        assert rules(src) == ["REP102"]

    def test_non_condition_receiver_ignored(self):
        src = DOC + "def _f(queue):\n    queue.wait()\n"
        assert rules(src) == []


class TestRep103PaperAliases:
    def test_camelcase_definition_flagged(self):
        src = DOC + "def addUnit() -> None:\n    pass\n"
        assert rules(src) == ["REP103"]

    def test_alias_call_flagged(self):
        src = DOC + "def _f(gbo):\n    gbo.waitUnit('u')\n"
        assert rules(src) == ["REP103"]

    def test_compat_module_is_exempt(self):
        src = DOC + (
            "def addUnit() -> None:\n"
            "    pass\n"
            "def _f(gbo):\n"
            "    gbo.waitUnit('u')\n"
        )
        assert rules(src, "src/repro/core/compat.py") == []

    def test_snake_case_is_clean(self):
        src = DOC + "def _f(gbo):\n    gbo.wait_unit('u')\n"
        assert rules(src) == []

    def test_alias_table_matches_compat_shim(self):
        # The linter never imports the library it lints, so its copy of
        # the camelCase spellings must be kept in sync by this test.
        assert lint.PAPER_ALIAS_NAMES == frozenset(PAPER_ALIASES)


class TestRep104MutableDefaults:
    @pytest.mark.parametrize("default", ["[]", "{}", "dict()", "set()",
                                         "[x for x in ()]"])
    def test_mutable_default_flagged(self, default):
        src = DOC + f"def _f(arg={default}):\n    return arg\n"
        assert rules(src) == ["REP104"]

    def test_keyword_only_default_flagged(self):
        src = DOC + "def _f(*, arg=[]):\n    return arg\n"
        assert rules(src) == ["REP104"]

    def test_none_default_is_clean(self):
        src = DOC + "def _f(arg=None):\n    return arg\n"
        assert rules(src) == []


class TestRep105Docstrings:
    def test_missing_module_docstring(self):
        assert rules("X = 1\n") == ["REP105"]

    def test_public_class_needs_docstring(self):
        src = DOC + "class Widget:\n    pass\n"
        assert rules(src) == ["REP105"]

    def test_public_function_needs_docstring(self):
        src = DOC + "def run(x: int) -> int:\n    return x + 1\n"
        assert rules(src) == ["REP105"]

    def test_private_and_trivial_defs_exempt(self):
        src = DOC + (
            "def _helper(x):\n"
            "    return x\n"
            "def stub() -> None:\n"
            "    ...\n"
        )
        assert rules(src) == []


class TestRep106Annotations:
    def test_missing_parameter_annotation_reported_by_name(self):
        src = DOC + (
            "def run(count) -> int:\n"
            '    """Doc."""\n'
            "    return count\n"
        )
        violations = lint.lint_source(src, "src/repro/x.py")
        assert [v.rule for v in violations] == ["REP106"]
        assert "count" in violations[0].message

    def test_missing_return_annotation_reported(self):
        src = DOC + (
            "def run(count: int):\n"
            '    """Doc."""\n'
            "    return count\n"
        )
        violations = lint.lint_source(src, "src/repro/x.py")
        assert [v.rule for v in violations] == ["REP106"]
        assert "return" in violations[0].message

    def test_self_and_properties_exempt(self):
        src = DOC + (
            "class Widget:\n"
            '    """Doc."""\n'
            "    def size(self, n: int) -> int:\n"
            '        """Doc."""\n'
            "        return n\n"
            "    @property\n"
            "    def name(self):\n"
            '        """Doc."""\n'
            "        return 'w'\n"
        )
        assert rules(src) == []


class TestRep107EngineImports:
    def test_engine_module_import_flagged(self):
        src = DOC + (
            "from repro.core.record_engine import RecordEngine\n"
        )
        violations = lint.lint_source(src, "src/repro/viz/x.py")
        assert [v.rule for v in violations] == ["REP107"]
        assert "repro.api" in violations[0].message

    def test_leaked_engine_name_from_core_flagged(self):
        src = DOC + (
            "from repro.core import GBO, MemoryManager\n"
        )
        violations = lint.lint_source(src, "src/repro/viz/x.py")
        assert [v.rule for v in violations] == ["REP107"]
        assert "MemoryManager" in violations[0].message

    def test_plain_module_import_flagged(self):
        src = DOC + "import repro.core.io_scheduler\n"
        assert rules(src, "src/repro/viz/x.py") == ["REP107"]

    def test_facade_imports_are_clean(self):
        src = DOC + (
            "from repro.core import GBO\n"
            "from repro.core.units import UnitHandle\n"
        )
        assert rules(src, "src/repro/viz/x.py") == []

    @pytest.mark.parametrize("path", [
        "src/repro/core/database.py",
        "src/repro/service/service.py",
    ])
    def test_core_and_service_exempt(self, path):
        src = DOC + (
            "from repro.core.memory_manager import MemoryManager\n"
        )
        assert rules(src, path) == []


class TestRep107ArenaImports:
    """The arena seam's blessed surface is wider than the engine's —
    the parallel layer and the API facade allocate directly — but the
    rendering layer must stay arena-agnostic."""

    def test_viz_arena_import_flagged(self):
        src = DOC + "from repro.core.arena import SharedMemoryArena\n"
        violations = lint.lint_source(src, "src/repro/viz/image.py")
        assert [v.rule for v in violations] == ["REP107"]
        assert "arena-agnostic" in violations[0].message

    def test_viz_arena_submodule_import_flagged(self):
        src = DOC + "from repro.core import arena\n"
        assert rules(src, "src/repro/viz/x.py") == ["REP107"]

    def test_viz_plain_arena_import_flagged(self):
        src = DOC + "import repro.core.arena\n"
        assert rules(src, "src/repro/viz/x.py") == ["REP107"]

    @pytest.mark.parametrize("path", [
        "src/repro/core/database.py",
        "src/repro/service/service.py",
        "src/repro/parallel/sharded.py",
        "src/repro/api.py",
    ])
    def test_blessed_surface_exempt(self, path):
        src = DOC + "from repro.core.arena import HeapArena\n"
        assert rules(src, path) == []


class TestRep108EngineTimeAndIo:
    def test_time_sleep_in_core_flagged(self):
        src = DOC + (
            "import time\n"
            "def _f():\n"
            "    time.sleep(0.1)\n"
        )
        assert rules(src, "src/repro/core/x.py") == ["REP108"]

    def test_bare_open_in_core_flagged(self):
        src = DOC + (
            "def _f(path):\n"
            "    with open(path) as f:\n"
            "        return f.read()\n"
        )
        assert rules(src, "src/repro/core/x.py") == ["REP108"]

    def test_outside_core_is_clean(self):
        src = DOC + (
            "import time\n"
            "def _f(path):\n"
            "    time.sleep(0.1)\n"
            "    return open(path)\n"
        )
        assert rules(src, "src/repro/io/x.py") == []
        assert rules(src, "src/repro/gen/x.py") == []

    def test_injected_seams_are_clean(self):
        src = DOC + (
            "class _C:\n"
            "    def _f(self):\n"
            "        self._clock.sleep(0.1)\n"
            "        return self._read(4)\n"
        )
        assert rules(src, "src/repro/core/x.py") == []


class TestRep109GuardedFieldCoverage:
    def test_unregistered_uncontracted_field_flagged(self):
        src = DOC + (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
        )
        violations = lint.lint_source(src, "src/repro/x.py")
        assert [v.rule for v in violations] == ["REP109"]
        assert violations[0].symbol == "Widget._items"

    def test_registered_field_is_clean(self):
        src = DOC + (
            "@guarded_by('_units', lock='_lock')\n"
            "class UnitStore:\n"
            '    """Doc."""\n'
        )
        assert rules(src) == []

    def test_lock_held_contract_covers_field(self):
        src = DOC + (
            "@guarded_by('_items', lock='_lock')\n"
            "class Widget:\n"
            '    """Doc."""\n'
            "    def _get(self):\n"
            '        """Read the items. Lock held."""\n'
            "        return self._items\n"
        )
        assert rules(src) == []

    def test_undecorated_class_is_clean(self):
        src = DOC + "class Widget:\n" + '    """Doc."""\n'
        assert rules(src) == []


class TestBaseline:
    def test_violation_key_is_line_number_free(self):
        src = DOC + "def run(count) -> int:\n    '''D.'''\n    return 1\n"
        (violation,) = lint.lint_source(src, "src/repro/x.py")
        assert violation.key == "REP106:src/repro/x.py:run"
        shifted = DOC + "\n\n" + src[len(DOC):]
        (moved,) = lint.lint_source(shifted, "src/repro/x.py")
        assert moved.key == violation.key
        assert moved.line != violation.line

    def test_round_trip(self, tmp_path):
        src = DOC + "import threading\nLOCK = threading.Lock()\n"
        violations = lint.lint_source(src, "src/repro/x.py")
        baseline_path = str(tmp_path / "baseline.json")
        lint.write_baseline(baseline_path, violations)
        assert lint.load_baseline(baseline_path) == {
            v.key for v in violations
        }

    def test_load_missing_baseline_is_empty(self, tmp_path):
        assert lint.load_baseline(str(tmp_path / "nope.json")) == set()

    def test_main_fails_on_new_then_passes_after_update(
        self, tmp_path, capsys
    ):
        module = tmp_path / "mod.py"
        module.write_text(DOC + "import threading\n"
                          "LOCK = threading.Lock()\n")
        baseline = str(tmp_path / "baseline.json")
        argv = [str(module), "--baseline", baseline]
        assert lint.main(argv) == 1
        assert "REP101" in capsys.readouterr().out
        assert lint.main(argv + ["--update-baseline"]) == 0
        assert lint.main(argv) == 0
        # A new violation alongside the baselined one still fails.
        module.write_text(module.read_text()
                          + "def _f(x=[]):\n    return x\n")
        assert lint.main(argv) == 1
        out = capsys.readouterr().out
        assert "REP104" in out and "1 baselined" in out

    def test_no_baseline_flag_reports_everything(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(DOC + "import threading\n"
                          "LOCK = threading.Lock()\n")
        baseline = str(tmp_path / "baseline.json")
        argv = [str(module), "--baseline", baseline]
        assert lint.main(argv + ["--update-baseline"]) == 0
        assert lint.main(argv + ["--no-baseline"]) == 1


class TestFileDiscovery:
    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text(DOC)
        (tmp_path / "pkg" / "a.py").write_text(DOC)
        (tmp_path / "pkg" / "notes.txt").write_text("x")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython.py").write_text("")
        found = [os.path.basename(p)
                 for p in lint.iter_python_files([str(tmp_path)])]
        assert found == ["a.py", "b.py"]


class TestRepoCleanliness:
    def test_src_repro_is_clean_with_committed_baseline(
        self, monkeypatch
    ):
        """The same gate CI runs: zero new violations over src/repro."""
        monkeypatch.chdir(REPO_ROOT)
        assert lint.main([]) == 0
