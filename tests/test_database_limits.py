"""Memory-budget errors, deadlock detection, close semantics (section 3.3)."""

import time

import pytest

from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.errors import (
    DatabaseClosedError,
    GodivaDeadlockError,
    MemoryBudgetError,
)

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 8, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))


def reader(nbytes):
    def read_fn(gbo, unit_name):
        ITEM.ensure(gbo)
        record = gbo.new_record("item")
        record.field("id").write(unit_name.ljust(8)[:8].encode())
        gbo.alloc_field_buffer(record, "data", nbytes)
        gbo.commit_record(record)

    return read_fn


class TestMemoryBudget:
    def test_allocation_larger_than_budget_raises(self, gbo_single):
        ITEM.ensure(gbo_single)
        record = gbo_single.new_record("item")
        too_big = gbo_single.mem_budget_bytes + 8
        with pytest.raises(MemoryBudgetError, match="exceeds the total"):
            gbo_single.alloc_field_buffer(record, "data", too_big)

    def test_main_thread_alloc_with_nothing_evictable_raises(self):
        with GBO(mem_bytes=4096, background_io=False) as gbo:
            ITEM.ensure(gbo)
            first = gbo.new_record("item")
            gbo.alloc_field_buffer(first, "data", 3000)
            second = gbo.new_record("item")
            with pytest.raises(MemoryBudgetError,
                               match="no finished unit is evictable"):
                gbo.alloc_field_buffer(second, "data", 3000)

    def test_alloc_succeeds_after_eviction(self):
        """When a finished unit is evictable, allocation reclaims it."""
        with GBO(mem_bytes=6000, background_io=False) as gbo:
            gbo.add_unit("old", reader(4000))
            gbo.wait_unit("old")
            gbo.finish_unit("old")
            # Unattached allocation forces eviction of "old".
            record = gbo.new_record("item")
            gbo.alloc_field_buffer(record, "data", 4000)
            from repro.core.units import UnitState

            assert gbo.unit_state("old") is UnitState.EVICTED

    def test_shrinking_budget_evicts_finished_units(self):
        with GBO(mem_bytes=10_000, background_io=False) as gbo:
            gbo.add_unit("u", reader(4000))
            gbo.wait_unit("u")
            gbo.finish_unit("u")
            gbo.set_mem_space(mem_bytes=1000)
            from repro.core.units import UnitState

            assert gbo.unit_state("u") is UnitState.EVICTED
            assert gbo.mem_used_bytes == 0


class TestDeadlockDetection:
    def test_deadlock_when_nothing_is_finished(self):
        """The paper's scenario: the developer neglects finish/delete;
        the main thread waits for a unit the blocked I/O thread can
        never load. GODIVA must detect this rather than hang."""
        unit_bytes = 2048
        budget = 2 * (unit_bytes + 512)
        with GBO(mem_bytes=budget) as gbo:
            for i in range(5):
                gbo.add_unit(f"u{i}", reader(unit_bytes))
            gbo.wait_unit("u0")
            gbo.wait_unit("u1")
            # Never finished/deleted: u4 can never become resident.
            with pytest.raises(GodivaDeadlockError,
                               match="finish_unit/delete_unit"):
                gbo.wait_unit("u4")

    def test_no_false_deadlock_with_well_behaved_app(self):
        """The same tight budget works when units are deleted."""
        unit_bytes = 2048
        budget = 2 * (unit_bytes + 512)
        with GBO(mem_bytes=budget) as gbo:
            for i in range(5):
                gbo.add_unit(f"u{i}", reader(unit_bytes))
            for i in range(5):
                gbo.wait_unit(f"u{i}")
                gbo.delete_unit(f"u{i}")
            assert gbo.stats.units_prefetched == 5


class TestCloseSemantics:
    def test_close_is_idempotent(self):
        gbo = GBO(mem_mb=1)
        gbo.close()
        gbo.close()
        assert gbo.closed

    def test_operations_after_close_raise(self):
        gbo = GBO(mem_mb=1)
        gbo.close()
        with pytest.raises(DatabaseClosedError):
            gbo.add_unit("u", reader(8))
        with pytest.raises(DatabaseClosedError):
            gbo.define_field("f", DataType.DOUBLE, 8)
        with pytest.raises(DatabaseClosedError):
            gbo.set_mem_space(mem_mb=2)

    def test_context_manager_closes(self):
        with GBO(mem_mb=1) as gbo:
            pass
        assert gbo.closed

    def test_close_with_queued_units(self):
        """Close terminates the I/O thread even with pending work."""
        gbo = GBO(mem_mb=8)
        def slow(g, name):
            time.sleep(0.05)
            reader(80)(g, name)

        for i in range(10):
            gbo.add_unit(f"u{i}", slow)
        gbo.close()   # must not hang
        assert gbo.closed

    def test_close_releases_all_memory(self):
        gbo = GBO(mem_mb=8)
        gbo.add_unit("u", reader(4000))
        gbo.wait_unit("u")
        gbo.close()
        # internal accountant is cleared with the records
        assert gbo.record_count is not None  # object still introspectable


class TestClockInjection:
    def test_injected_clock_drives_stats(self):
        ticks = {"now": 0.0}

        def clock():
            return ticks["now"]

        gbo = GBO(mem_mb=8, background_io=False, clock=clock)

        def timed_read(g, name):
            ticks["now"] += 2.0
            reader(80)(g, name)

        gbo.add_unit("u", timed_read)
        gbo.wait_unit("u")
        assert gbo.stats.foreground_read_seconds == pytest.approx(2.0)
        assert gbo.stats.visible_io_seconds == pytest.approx(2.0)
        gbo.close()
