"""Simulated parallel Voyager scaling (shared vs private disks)."""

import pytest

from repro.simulate.cluster import simulate_cluster_voyager
from repro.simulate.machine import TURING
from repro.simulate.workload import IoProfile, TestWorkload


def workload(n=16, compute_s=8.0):
    godiva = IoProfile(bytes_read=20e6, read_calls=100,
                       seeks=10, settles=80, opens=8)
    original = IoProfile(bytes_read=25e6, read_calls=140,
                         seeks=25, settles=100, opens=8)
    return TestWorkload(
        test="cluster", n_snapshots=n,
        original=original, godiva=godiva, compute_s=compute_s,
    )


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            simulate_cluster_voyager(TURING, workload(), "O", 2)

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            simulate_cluster_voyager(TURING, workload(), "G", 0)


class TestScaling:
    def test_single_worker_matches_runner(self):
        """n_workers=1 degenerates to the sequential simulation."""
        from repro.simulate.runner import simulate_voyager

        w = workload()
        cluster = simulate_cluster_voyager(TURING, w, "G", 1)
        serial = simulate_voyager(TURING, w, "G")
        assert cluster.makespan_s == pytest.approx(serial.total_s)
        assert cluster.total_visible_io_s == pytest.approx(
            serial.visible_io_s
        )

    def test_private_disks_scale_nearly_linearly(self):
        w = workload(n=16)
        serial = simulate_cluster_voyager(TURING, w, "G", 1)
        quad = simulate_cluster_voyager(TURING, w, "G", 4,
                                        shared_disk=False)
        assert 3.5 < quad.speedup_vs(serial) <= 4.01

    def test_all_units_processed(self):
        w = workload(n=13)   # uneven split
        run = simulate_cluster_voyager(TURING, w, "TG", 4)
        assert sum(worker.n_units for worker in run.workers) == 13

    def test_shared_disk_never_faster_than_private(self):
        w = workload(n=16)
        for mode in ("G", "TG"):
            shared = simulate_cluster_voyager(
                TURING, w, mode, 4, shared_disk=True
            )
            private = simulate_cluster_voyager(
                TURING, w, mode, 4, shared_disk=False
            )
            assert shared.makespan_s >= private.makespan_s - 1e-9

    def test_shared_disk_floor_is_total_device_time(self):
        """With enough workers the shared device serializes: makespan
        >= total disk service time."""
        w = workload(n=32, compute_s=1.0)
        run = simulate_cluster_voyager(TURING, w, "TG", 8,
                                       shared_disk=True)
        total_disk = 32 * w.godiva.disk_seconds(TURING.disk)
        assert run.makespan_s >= total_disk - 1e-9
        assert run.disk_busy_s == pytest.approx(total_disk)

    def test_tg_beats_g_per_worker(self):
        """The paper's parallel claim: GODIVA's sequential-mode benefit
        carries into the partitioned parallel runs."""
        w = workload(n=16)
        for n_workers in (2, 4):
            g = simulate_cluster_voyager(TURING, w, "G", n_workers)
            tg = simulate_cluster_voyager(TURING, w, "TG", n_workers)
            assert tg.makespan_s < g.makespan_s
            # Each worker pays its own first-unit cold wait, so the
            # floor grows with n_workers; still a large reduction.
            assert tg.total_visible_io_s < 0.3 * g.total_visible_io_s

    def test_disk_busy_private_sums_all(self):
        w = workload(n=8)
        run = simulate_cluster_voyager(TURING, w, "G", 4,
                                       shared_disk=False)
        expected = 8 * w.godiva.disk_seconds(TURING.disk)
        assert run.disk_busy_s == pytest.approx(expected)
