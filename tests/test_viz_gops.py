"""Graphics-operations files and the three evaluation op-sets."""

import pytest

from repro.viz.gops import GraphicsOp, GraphicsOps
from repro.viz.gops import test_gops as evaluation_gops


class TestGraphicsOp:
    def test_boundary_minimal(self):
        op = GraphicsOp("boundary", "velocity", component="magnitude")
        assert op.kind == "boundary"

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            GraphicsOp("contour", "velocity")

    def test_unknown_component(self):
        with pytest.raises(ValueError, match="component"):
            GraphicsOp("boundary", "velocity", component="w")

    def test_isosurface_requires_value(self):
        with pytest.raises(ValueError, match="isovalue"):
            GraphicsOp("isosurface", "temperature")

    def test_slice_requires_plane(self):
        with pytest.raises(ValueError, match="origin and normal"):
            GraphicsOp("slice", "temperature")

    def test_json_roundtrip(self):
        op = GraphicsOp("slice", "s11", origin=(0, 0, 1),
                        normal=(0, 1, 0), colormap="heat",
                        vmin=0.0, vmax=1.0)
        back = GraphicsOp.from_json(op.to_json())
        assert back == op


class TestGraphicsOps:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GraphicsOps([])

    def test_file_roundtrip(self, tmp_path):
        ops = evaluation_gops("medium")
        path = str(tmp_path / "gops.json")
        ops.save(path)
        loaded = GraphicsOps.load(path)
        assert len(loaded) == len(ops)
        assert list(loaded) == list(ops)

    def test_fields_used_dedup_in_order(self):
        ops = GraphicsOps([
            GraphicsOp("boundary", "b"),
            GraphicsOp("boundary", "a"),
            GraphicsOp("boundary", "b"),
        ])
        assert ops.fields_used() == ["b", "a"]


class TestEvaluationSets:
    def test_all_three_exist(self):
        for name in ("simple", "medium", "complex"):
            ops = evaluation_gops(name)
            assert len(ops) >= 1

    def test_unknown_test(self):
        with pytest.raises(ValueError):
            evaluation_gops("extreme")

    def test_compute_ordering(self):
        """'complex' has the most geometry work, 'simple' the least."""
        assert len(evaluation_gops("simple")) < len(evaluation_gops("complex"))

    def test_medium_reads_most_variables(self):
        fields = {
            name: len(evaluation_gops(name).fields_used())
            for name in ("simple", "medium", "complex")
        }
        assert fields["medium"] > fields["simple"]
        assert fields["medium"] > fields["complex"]

    def test_variable_switch_counts(self):
        """The grid-rebuild counts that drive the paper's redundancy
        ordering: medium > {simple, complex}."""

        def switches(name):
            ops = list(evaluation_gops(name))
            count = 0
            current = None
            for op in ops:
                if op.field != current:
                    count += 1
                    current = op.field
            return count - 1  # first build is not redundant

        assert switches("medium") == 3
        assert switches("simple") == 1
        assert switches("complex") == 1
