"""Tetrahedral mesh generation: structure, volumes, conformality."""

import numpy as np
import pytest

from repro.gen.tetmesh import (
    TetMesh,
    structured_grid_nodes,
    structured_tet_block,
    structured_tet_connectivity,
)


class TestStructuredGrid:
    def test_node_count(self):
        nodes = structured_grid_nodes(2, 3, 4)
        assert nodes.shape == (3 * 4 * 5, 3)

    def test_nodes_span_unit_cube(self):
        nodes = structured_grid_nodes(2, 2, 2)
        assert nodes.min() == 0.0
        assert nodes.max() == 1.0

    def test_node_ordering_i_fastest(self):
        nodes = structured_grid_nodes(2, 2, 2)
        # First two nodes differ only in x.
        assert nodes[1][0] > nodes[0][0]
        assert nodes[1][1] == nodes[0][1]
        assert nodes[1][2] == nodes[0][2]

    def test_mapping_applied(self):
        nodes = structured_grid_nodes(
            1, 1, 1, mapping=lambda p: p * 2.0
        )
        assert nodes.max() == 2.0

    def test_bad_mapping_shape_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            structured_grid_nodes(1, 1, 1, mapping=lambda p: p[:, :2])

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError):
            structured_grid_nodes(0, 1, 1)
        with pytest.raises(ValueError):
            structured_tet_connectivity(1, 0, 1)


class TestConnectivity:
    def test_six_tets_per_hex(self):
        assert structured_tet_connectivity(2, 3, 4).shape == \
            (6 * 2 * 3 * 4, 4)

    def test_indices_in_range(self):
        tets = structured_tet_connectivity(3, 3, 3)
        assert tets.min() >= 0
        assert tets.max() < 4 ** 3

    def test_dtype_int32(self):
        assert structured_tet_connectivity(1, 1, 1).dtype == np.int32


class TestTetMesh:
    def test_unit_cube_volume(self):
        mesh = structured_tet_block(3, 3, 3)
        assert mesh.total_volume() == pytest.approx(1.0)

    def test_volume_invariant_across_resolution(self):
        for n in (1, 2, 4):
            mesh = structured_tet_block(n, n, n)
            assert mesh.total_volume() == pytest.approx(1.0)

    def test_kuhn_tets_all_positive_or_all_negative(self):
        """The Kuhn decomposition with a consistent diagonal yields
        uniformly oriented tets — no sign mixing."""
        volumes = structured_tet_block(2, 2, 2).tet_volumes()
        assert (volumes > 0).all() or (volumes < 0).all()

    def test_validate_passes_on_good_mesh(self):
        structured_tet_block(2, 2, 2).validate()

    def test_validate_catches_repeated_node(self):
        mesh = structured_tet_block(1, 1, 1)
        bad = mesh.tets.copy()
        bad[0, 1] = bad[0, 0]
        with pytest.raises(ValueError, match="repeated"):
            TetMesh(mesh.nodes, bad).validate()

    def test_validate_catches_degenerate_tet(self):
        nodes = np.array([
            [0, 0, 0], [1, 0, 0], [2, 0, 0], [3, 0, 0],
        ], dtype=float)   # collinear
        with pytest.raises(ValueError, match="degenerate"):
            TetMesh(nodes, np.array([[0, 1, 2, 3]])).validate()

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            TetMesh(np.zeros((3, 2)), np.zeros((1, 4), dtype=int))
        with pytest.raises(ValueError):
            TetMesh(np.zeros((3, 3)), np.zeros((1, 3), dtype=int))

    def test_out_of_range_connectivity_rejected(self):
        nodes = np.zeros((4, 3))
        with pytest.raises(ValueError, match="missing nodes"):
            TetMesh(nodes, np.array([[0, 1, 2, 9]]))

    def test_bounding_box(self):
        mesh = structured_tet_block(1, 1, 1)
        lo, hi = mesh.bounding_box()
        assert lo.tolist() == [0, 0, 0]
        assert hi.tolist() == [1, 1, 1]

    def test_centroids(self):
        mesh = structured_tet_block(1, 1, 1)
        centroids = mesh.tet_centroids()
        assert centroids.shape == (6, 3)
        assert (centroids > 0).all() and (centroids < 1).all()

    def test_conformality_via_face_counts(self):
        """In a conformal mesh every interior face is shared by exactly
        two tets; boundary faces by one."""
        mesh = structured_tet_block(2, 2, 2)
        faces = mesh.tets[
            :, [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]]
        ].reshape(-1, 3)
        sorted_faces = np.sort(faces, axis=1)
        _unique, counts = np.unique(
            sorted_faces, axis=0, return_counts=True
        )
        assert set(counts.tolist()) <= {1, 2}
