"""Software rasterizer: coverage, z-buffering, shading."""

import numpy as np
import pytest

from repro.viz.camera import Camera
from repro.viz.colormap import Colormap
from repro.viz.isosurface import TriangleSoup
from repro.viz.render import Renderer


def front_camera():
    return Camera(position=(0.0, -5.0, 0.0), look_at=(0.0, 0.0, 0.0),
                  up=(0, 0, 1), width=64, height=64)


def facing_triangle(y=0.0, size=1.0):
    verts = np.array([[
        [-size, y, -size],
        [size, y, -size],
        [0.0, y, size],
    ]])
    values = np.zeros((1, 3))
    return TriangleSoup(verts, values)


def test_blank_image_is_background():
    renderer = Renderer(front_camera())
    image = renderer.image()
    assert image.shape == (64, 64, 3)
    assert len(np.unique(image.reshape(-1, 3), axis=0)) == 1


def test_draw_covers_pixels():
    renderer = Renderer(front_camera())
    renderer.draw(facing_triangle(), Colormap("gray"))
    image = renderer.image()
    background = image[0, 0]
    changed = (image != background).any(axis=2)
    assert changed.sum() > 100
    assert renderer.triangles_drawn == 1


def test_center_pixel_hit():
    renderer = Renderer(front_camera())
    renderer.draw_flat(facing_triangle(), (1.0, 0.0, 0.0))
    image = renderer.image()
    center = image[32, 32]
    assert center[0] > center[2]   # red-ish


def test_zbuffer_near_wins():
    renderer = Renderer(front_camera())
    # Far green triangle drawn first, near red one after.
    renderer.draw_flat(facing_triangle(y=2.0), (0.0, 1.0, 0.0))
    renderer.draw_flat(facing_triangle(y=-2.0), (1.0, 0.0, 0.0))
    center = renderer.image()[32, 32]
    assert center[0] > center[1]


def test_zbuffer_order_independent():
    a = Renderer(front_camera())
    a.draw_flat(facing_triangle(y=2.0), (0.0, 1.0, 0.0))
    a.draw_flat(facing_triangle(y=-2.0), (1.0, 0.0, 0.0))
    b = Renderer(front_camera())
    b.draw_flat(facing_triangle(y=-2.0), (1.0, 0.0, 0.0))
    b.draw_flat(facing_triangle(y=2.0), (0.0, 1.0, 0.0))
    assert np.array_equal(a.image(), b.image())


def test_behind_camera_culled():
    renderer = Renderer(front_camera())
    renderer.draw_flat(facing_triangle(y=-10.0), (1.0, 1.0, 1.0))
    image = renderer.image()
    assert len(np.unique(image.reshape(-1, 3), axis=0)) == 1


def test_empty_soup_noop():
    renderer = Renderer(front_camera())
    renderer.draw(TriangleSoup.empty(), Colormap("gray"))
    assert renderer.triangles_drawn == 0


def test_gouraud_color_interpolation():
    """Per-vertex values shade across the triangle."""
    renderer = Renderer(front_camera())
    soup = TriangleSoup(
        facing_triangle(size=2.0).vertices,
        np.array([[0.0, 0.0, 1.0]]),   # one hot vertex (the top)
    )
    renderer.draw(soup, Colormap("gray", vmin=0.0, vmax=1.0))
    image = renderer.image()
    top = image[10, 32].astype(int).sum()
    bottom = image[50, 32].astype(int).sum()
    assert top > bottom


def test_vmin_vmax_override():
    renderer = Renderer(front_camera())
    soup = facing_triangle()
    renderer.draw(soup, Colormap("gray"), vmin=-1.0, vmax=1.0)
    center = renderer.image()[40, 32]
    # value 0 in [-1, 1] -> mid gray (before lighting).
    assert 40 < center[0] < 220


def test_partially_offscreen_triangle_covers_screen():
    """A triangle far larger than the frustum is clipped to the image
    and covers every pixel."""
    renderer = Renderer(front_camera())
    soup = TriangleSoup(
        np.array([[[-20.0, 0.0, -20.0], [20.0, 0.0, -20.0],
                   [0.0, 0.0, 20.0]]]),
        np.zeros((1, 3)),
    )
    renderer.draw_flat(soup, (1.0, 1.0, 1.0))
    blank = Renderer(front_camera()).image()
    image = renderer.image()
    assert (image != blank).all(axis=2).all()


def test_depth_image():
    renderer = Renderer(front_camera())
    renderer.draw_flat(facing_triangle(), (1.0, 1.0, 1.0))
    depth = renderer.depth_image()
    assert depth.shape == (64, 64)
    assert depth.max() > 0


class TestColorbar:
    def test_colorbar_strip_drawn(self):
        renderer = Renderer(front_camera())
        renderer.draw_colorbar(Colormap("rainbow"))
        image = renderer.image()
        # Rightmost columns (inside the margin) differ from background.
        blank = Renderer(front_camera()).image()
        strip = image[:, 64 - 16:64 - 4]
        assert not np.array_equal(strip, blank[:, 64 - 16:64 - 4])

    def test_colorbar_orientation_high_on_top(self):
        renderer = Renderer(front_camera())
        renderer.draw_colorbar(Colormap("gray"))
        image = renderer.image()
        x = 64 - 4 - 6   # middle of the strip
        top = image[6, x].astype(int).sum()
        bottom = image[57, x].astype(int).sum()
        assert top > bottom   # gray: high value = white = top

    def test_colorbar_too_wide_rejected(self):
        renderer = Renderer(front_camera())
        with pytest.raises(ValueError):
            renderer.draw_colorbar(Colormap("gray"), width=100)


class TestColorbarHeightValidation:
    def test_margins_taller_than_frame_rejected(self):
        # Regression: margin*2 >= height used to produce an empty/
        # inverted gradient range and crash in the strip fill.
        camera = Camera(position=(0.0, -5.0, 0.0), look_at=(0, 0, 0),
                        up=(0, 0, 1), width=64, height=8)
        renderer = Renderer(camera)
        with pytest.raises(ValueError):
            renderer.draw_colorbar(Colormap("gray"), margin=4)

    def test_just_tall_enough_accepted(self):
        camera = Camera(position=(0.0, -5.0, 0.0), look_at=(0, 0, 0),
                        up=(0, 0, 1), width=64, height=9)
        renderer = Renderer(camera)
        renderer.draw_colorbar(Colormap("gray"), margin=4)


class TestTrianglesCulledStat:
    def test_counts_triangles_with_vertex_at_or_behind_near(self):
        renderer = Renderer(front_camera())
        assert renderer.triangles_culled == 0
        # One triangle fully behind the camera, one straddling the near
        # plane (one vertex behind): both are whole-triangle culled.
        behind = facing_triangle(y=-10.0)
        straddle = TriangleSoup(np.array([[
            [-1.0, -10.0, -1.0],   # behind the camera
            [1.0, 2.0, -1.0],
            [0.0, 2.0, 1.0],
        ]]), np.zeros((1, 3)))
        renderer.draw_flat(behind, (1.0, 1.0, 1.0))
        assert renderer.triangles_culled == 1
        renderer.draw_flat(straddle, (1.0, 1.0, 1.0))
        assert renderer.triangles_culled == 2

    def test_visible_triangles_not_counted(self):
        renderer = Renderer(front_camera())
        renderer.draw_flat(facing_triangle(), (1.0, 1.0, 1.0))
        assert renderer.triangles_culled == 0
