"""The prefetch priority queue: ordering, boosts, removal, invariants."""

import pytest

from repro.structures import PriorityQueue


def drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


def test_fifo_among_equal_priorities():
    q = PriorityQueue()
    for name in ("a", "b", "c", "d"):
        q.push(name)
    assert drain(q) == ["a", "b", "c", "d"]


def test_higher_priority_pops_first():
    q = PriorityQueue()
    q.push("low", priority=0.0)
    q.push("high", priority=5.0)
    q.push("mid", priority=1.0)
    q.push("high2", priority=5.0)
    assert drain(q) == ["high", "high2", "mid", "low"]


def test_negative_priorities_sort_below_default():
    q = PriorityQueue()
    q.push("later", priority=-1.0)
    q.push("normal")
    assert drain(q) == ["normal", "later"]


def test_push_duplicate_raises():
    q = PriorityQueue()
    q.push("a")
    with pytest.raises(ValueError, match="already queued"):
        q.push("a")


def test_pop_and_peek_empty_raise():
    q = PriorityQueue()
    with pytest.raises(IndexError):
        q.pop()
    with pytest.raises(IndexError):
        q.peek()


def test_peek_is_nondestructive():
    q = PriorityQueue()
    q.push("a")
    q.push("b", priority=2.0)
    assert q.peek() == "b"
    assert len(q) == 2
    assert q.pop() == "b"


def test_membership_and_len():
    q = PriorityQueue()
    q.push("a")
    q.push("b")
    assert "a" in q and "b" in q and "c" not in q
    assert len(q) == 2
    q.pop()
    assert len(q) == 1


def test_remove():
    q = PriorityQueue()
    q.push("a")
    q.push("b")
    q.push("c")
    assert q.remove("b") is True
    assert q.remove("b") is False
    assert q.remove("zzz") is False
    assert drain(q) == ["a", "c"]


def test_remove_front_then_pop():
    q = PriorityQueue()
    q.push("a")
    q.push("b")
    assert q.remove("a") is True
    assert q.peek() == "b"
    assert q.pop() == "b"


def test_to_front_overrides_priority():
    q = PriorityQueue()
    q.push("a", priority=9.0)
    q.push("b", priority=0.0)
    assert q.to_front("b") is True
    assert drain(q) == ["b", "a"]


def test_latest_boost_wins():
    q = PriorityQueue()
    for name in ("a", "b", "c"):
        q.push(name)
    q.to_front("b")
    q.to_front("c")
    assert drain(q) == ["c", "b", "a"]


def test_to_front_unknown_item():
    q = PriorityQueue()
    assert q.to_front("ghost") is False


def test_to_front_keeps_nominal_priority():
    q = PriorityQueue()
    q.push("a", priority=3.0)
    q.to_front("a")
    assert q.priority_of("a") == 3.0
    assert q.max_priority() == 3.0


def test_reprioritize_reorders():
    q = PriorityQueue()
    q.push("a")
    q.push("b")
    assert q.reprioritize("b", 10.0) is True
    assert q.reprioritize("nope", 1.0) is False
    assert q.priority_of("b") == 10.0
    assert drain(q) == ["b", "a"]


def test_reprioritize_preserves_fifo_arrival():
    q = PriorityQueue()
    q.push("a")
    q.push("b")
    q.push("c")
    # Lower then restore: arrival stamp keeps 'b' between 'a' and 'c'
    # when the priorities are equal again.
    q.reprioritize("b", -1.0)
    q.reprioritize("b", 0.0)
    assert drain(q) == ["a", "b", "c"]


def test_iter_yields_pop_order_nondestructively():
    q = PriorityQueue()
    q.push("a")
    q.push("b", priority=2.0)
    q.push("c")
    q.to_front("c")
    assert list(q) == ["c", "b", "a"]
    assert len(q) == 3


def test_max_priority_and_clear():
    q = PriorityQueue()
    assert q.max_priority() is None
    q.push("a", priority=1.5)
    q.push("b", priority=-2.0)
    assert q.max_priority() == 1.5
    q.clear()
    assert len(q) == 0
    assert q.max_priority() is None
    assert not q


def test_interleaved_operations_stay_consistent():
    q = PriorityQueue()
    for step in range(50):
        q.push(step, priority=float(step % 5))
    for step in range(0, 50, 3):
        q.remove(step)
    q.to_front(49)
    order = drain(q)
    assert order[0] == 49
    live = [s for s in range(50) if s % 3 != 0 and s != 49]
    # Remaining items pop by descending priority, FIFO within ties.
    expected = sorted(live, key=lambda s: (-(s % 5), s))
    assert order[1:] == expected
