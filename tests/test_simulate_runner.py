"""Simulated Voyager schedules and the machine/workload models."""

import pytest

from repro.io.disk import ENGLE_DISK
from repro.simulate.machine import ENGLE, TURING, Machine
from repro.simulate.runner import simulate_voyager
from repro.simulate.workload import (
    COMPUTE_RATIO,
    IoProfile,
    TestWorkload,
    trace_workload,
)


def synthetic_workload(n=8, compute_s=8.0):
    """A hand-built workload: O reads 25 % more than G."""
    godiva = IoProfile(bytes_read=20e6, read_calls=100,
                       seeks=10, settles=80, opens=8)
    original = IoProfile(bytes_read=25e6, read_calls=140,
                         seeks=25, settles=100, opens=8)
    return TestWorkload(
        test="synthetic", n_snapshots=n,
        original=original, godiva=godiva, compute_s=compute_s,
    )


class TestMachineModel:
    def test_platform_constants(self):
        assert ENGLE.n_cpus == 1
        assert TURING.n_cpus == 2
        assert ENGLE.disk is ENGLE_DISK

    def test_parse_seconds(self):
        machine = Machine("m", 1, ENGLE_DISK, 1e-7, 1e-4)
        assert machine.parse_seconds(1e7, 100) == pytest.approx(1.01)

    def test_io_profile_costs(self):
        profile = IoProfile(bytes_read=35e6, read_calls=10,
                            seeks=2, settles=4, opens=1)
        disk_s = profile.disk_seconds(ENGLE_DISK)
        expected = (
            1.0 + 2 * ENGLE_DISK.seek_s + 4 * ENGLE_DISK.settle_s
            + ENGLE_DISK.open_s
        )
        assert disk_s == pytest.approx(expected)


class TestSchedules:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            simulate_voyager(ENGLE, synthetic_workload(), "X")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            simulate_voyager(ENGLE, synthetic_workload(), "TG",
                             window_units=0)

    def test_blocking_modes_fully_visible(self):
        """O and G: every unit's I/O is visible; total = io + compute."""
        workload = synthetic_workload()
        for mode in ("O", "G"):
            run = simulate_voyager(ENGLE, workload, mode)
            profile = workload.io_profile(mode)
            io_per_unit = (
                profile.disk_seconds(ENGLE.disk)
                + profile.parse_seconds(ENGLE)
            )
            expected_io = workload.n_snapshots * io_per_unit
            assert run.visible_io_s == pytest.approx(expected_io)
            assert run.total_s == pytest.approx(
                expected_io + workload.n_snapshots * workload.compute_s
            )
            assert run.computation_s == pytest.approx(
                workload.n_snapshots * workload.compute_s
            )

    def test_g_beats_o_on_visible_io(self):
        workload = synthetic_workload()
        o = simulate_voyager(ENGLE, workload, "O")
        g = simulate_voyager(ENGLE, workload, "G")
        assert g.visible_io_s < o.visible_io_s
        assert g.total_s < o.total_s

    def test_tg_reduces_visible_io(self):
        workload = synthetic_workload()
        g = simulate_voyager(ENGLE, workload, "G")
        tg = simulate_voyager(ENGLE, workload, "TG")
        assert tg.visible_io_s < 0.2 * g.visible_io_s
        assert tg.total_s < g.total_s

    def test_tg_slows_computation_on_one_cpu(self):
        """Figure 3(a): overlap helps overall but the attributed
        computation time grows (CPU contention with the I/O thread)."""
        workload = synthetic_workload()
        g = simulate_voyager(ENGLE, workload, "G")
        tg = simulate_voyager(ENGLE, workload, "TG")
        assert tg.computation_s > g.computation_s

    def test_two_cpus_hide_more_than_one(self):
        """The central Figure 3 contrast."""
        workload = synthetic_workload()

        def hidden(machine):
            g = simulate_voyager(machine, workload, "G")
            tg = simulate_voyager(machine, workload, "TG")
            return (g.total_s - tg.total_s) / g.visible_io_s

        assert hidden(TURING) > 2 * hidden(ENGLE)
        assert hidden(TURING) > 0.7
        assert 0.05 < hidden(ENGLE) < 0.6

    def test_competitor_slows_tg(self):
        """TG1 vs TG2 on the dual-CPU node."""
        workload = synthetic_workload()
        tg2 = simulate_voyager(TURING, workload, "TG")
        tg1 = simulate_voyager(TURING, workload, "TG",
                               competitor=True)
        assert tg1.total_s > tg2.total_s

    def test_first_unit_always_visible(self):
        workload = synthetic_workload()
        tg = simulate_voyager(ENGLE, workload, "TG")
        assert tg.per_unit_wait_s[0] > 0
        assert len(tg.per_unit_wait_s) == workload.n_snapshots

    def test_window_one_disables_overlap(self):
        """window=1: the unit being processed fills the budget; the
        next cannot prefetch — behaves like G (plus scheduling noise)."""
        workload = synthetic_workload()
        g = simulate_voyager(ENGLE, workload, "G")
        tg1 = simulate_voyager(ENGLE, workload, "TG", window_units=1)
        tg4 = simulate_voyager(ENGLE, workload, "TG", window_units=4)
        assert tg1.visible_io_s > 2 * tg4.visible_io_s
        assert tg1.total_s >= tg4.total_s

    def test_jitter_determinism_and_variation(self):
        workload = synthetic_workload()
        a = simulate_voyager(ENGLE, workload, "TG", jitter=0.2, seed=1)
        b = simulate_voyager(ENGLE, workload, "TG", jitter=0.2, seed=1)
        c = simulate_voyager(ENGLE, workload, "TG", jitter=0.2, seed=2)
        assert a.total_s == b.total_s
        assert a.total_s != c.total_s


class TestTraceWorkload:
    def test_trace_matches_real_pipeline(self, small_dataset):
        workload = trace_workload(
            small_dataset.directory, "simple", n_snapshots=4
        )
        assert workload.n_snapshots == 4
        assert workload.original.bytes_read > \
            workload.godiva.bytes_read
        assert workload.compute_s > 0
        assert workload.godiva.opens == 2  # files per snapshot

    def test_compute_ratio_ordering(self, small_dataset):
        """'complex' must have the largest compute-to-I/O ratio."""
        assert COMPUTE_RATIO["complex"] > COMPUTE_RATIO["medium"] > \
            COMPUTE_RATIO["simple"]

    def test_explicit_compute_override(self, small_dataset):
        workload = trace_workload(
            small_dataset.directory, "simple", compute_s=9.0
        )
        assert workload.compute_s == 9.0


class TestUtilization:
    def test_cpu_busy_accounts_all_work(self):
        workload = synthetic_workload()
        run = simulate_voyager(ENGLE, workload, "G")
        profile = workload.io_profile("G")
        expected = workload.n_snapshots * (
            profile.parse_seconds(ENGLE) + workload.compute_s
        )
        assert run.cpu_busy_s == pytest.approx(expected)

    def test_disk_busy_equals_device_time(self):
        workload = synthetic_workload()
        run = simulate_voyager(ENGLE, workload, "G")
        expected = workload.n_snapshots * \
            workload.io_profile("G").disk_seconds(ENGLE.disk)
        assert run.disk_busy_s == pytest.approx(expected)

    def test_tg_keeps_disk_busier(self):
        """Overlap compresses the timeline, raising disk utilization."""
        workload = synthetic_workload()
        g = simulate_voyager(ENGLE, workload, "G")
        tg = simulate_voyager(ENGLE, workload, "TG")
        assert tg.disk_busy_s == pytest.approx(g.disk_busy_s)
        assert tg.disk_utilization > g.disk_utilization
