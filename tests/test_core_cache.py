"""Unit tests for the eviction policies (section 3.3: LRU default)."""

import pytest

from repro.core.cache import (
    FifoEvictionPolicy,
    LruEvictionPolicy,
    MruEvictionPolicy,
    make_policy,
)

ALL_POLICIES = ["lru", "fifo", "mru"]


@pytest.fixture(params=ALL_POLICIES)
def policy(request):
    return make_policy(request.param)


def test_make_policy_names():
    assert isinstance(make_policy("lru"), LruEvictionPolicy)
    assert isinstance(make_policy("fifo"), FifoEvictionPolicy)
    assert isinstance(make_policy("mru"), MruEvictionPolicy)


def test_make_policy_unknown():
    with pytest.raises(ValueError, match="unknown eviction policy"):
        make_policy("clock")


class TestCommonBehaviour:
    def test_empty_victim_is_none(self, policy):
        assert policy.victim() is None
        assert len(policy) == 0

    def test_add_and_victim(self, policy):
        policy.add("a")
        assert "a" in policy
        assert policy.victim() == "a"
        assert "a" not in policy
        assert policy.victim() is None

    def test_remove(self, policy):
        policy.add("a")
        assert policy.remove("a")
        assert not policy.remove("a")
        assert policy.victim() is None

    def test_victim_is_removed(self, policy):
        policy.add("a")
        policy.add("b")
        victim = policy.victim()
        assert victim not in policy
        assert len(policy) == 1

    def test_iteration(self, policy):
        for name in ("a", "b", "c"):
            policy.add(name)
        assert set(policy) == {"a", "b", "c"}

    def test_readd_after_victim(self, policy):
        policy.add("a")
        policy.victim()
        policy.add("a")
        assert policy.victim() == "a"


class TestLruSpecifics:
    def test_victim_is_least_recently_touched(self):
        policy = LruEvictionPolicy()
        for name in ("a", "b", "c"):
            policy.add(name)
        policy.touch("a")
        assert policy.victim() == "b"
        assert policy.victim() == "c"
        assert policy.victim() == "a"

    def test_touch_absent_is_noop(self):
        policy = LruEvictionPolicy()
        policy.touch("ghost")
        assert len(policy) == 0


class TestMruSpecifics:
    def test_victim_is_most_recently_touched(self):
        policy = MruEvictionPolicy()
        for name in ("a", "b", "c"):
            policy.add(name)
        assert policy.victim() == "c"
        policy.touch("a")
        assert policy.victim() == "a"

    def test_touch_absent_is_noop(self):
        policy = MruEvictionPolicy()
        policy.touch("ghost")
        assert len(policy) == 0


class TestFifoSpecifics:
    def test_victim_order_ignores_touches(self):
        policy = FifoEvictionPolicy()
        for name in ("a", "b", "c"):
            policy.add(name)
        policy.touch("a")   # FIFO ignores recency
        assert policy.victim() == "a"
        assert policy.victim() == "b"

    def test_double_add_is_noop(self):
        policy = FifoEvictionPolicy()
        policy.add("a")
        policy.add("a")
        assert len(policy) == 1

    def test_remove_readd_cycle(self):
        policy = FifoEvictionPolicy()
        policy.add("a")
        policy.add("b")
        policy.remove("a")
        policy.add("a")
        assert policy.victim() == "b"
        assert policy.victim() == "a"
        assert policy.victim() is None
