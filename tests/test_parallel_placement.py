"""Rendezvous placement: determinism, spread, minimal movement."""

import pytest

from repro.io.readers import snapshot_unit_name
from repro.parallel.placement import (
    PlacementMap,
    rendezvous_score,
    rendezvous_shard,
    weighted_assignment,
)

UNITS = [snapshot_unit_name(step) for step in range(200)]


def shard_ids(n):
    return [f"shard{i}" for i in range(n)]


class TestRendezvous:
    def test_deterministic(self):
        shards = shard_ids(4)
        first = [rendezvous_shard(u, shards) for u in UNITS]
        second = [rendezvous_shard(u, shards) for u in UNITS]
        assert first == second

    def test_order_independent(self):
        shards = shard_ids(4)
        reordered = list(reversed(shards))
        assert all(
            rendezvous_shard(u, shards) == rendezvous_shard(u, reordered)
            for u in UNITS
        )

    def test_scores_differ_per_shard(self):
        scores = {
            shard: rendezvous_score("snap:0001", shard)
            for shard in shard_ids(8)
        }
        assert len(set(scores.values())) == len(scores)

    def test_every_shard_gets_work_at_scale(self):
        placement = PlacementMap(shard_ids(8))
        groups = placement.partition(UNITS)
        assert set(groups) == set(shard_ids(8))
        counts = [len(groups[s]) for s in shard_ids(8)]
        assert all(c > 0 for c in counts)
        # Hash spread: nobody hoards (loose bound, deterministic).
        assert max(counts) < 3 * (len(UNITS) // 8)

    def test_partition_is_exact_cover(self):
        placement = PlacementMap(shard_ids(5))
        groups = placement.partition(UNITS)
        flat = sorted(u for group in groups.values() for u in group)
        assert flat == sorted(UNITS)


class TestRebalance:
    def test_growth_moves_about_one_over_n(self):
        placement = PlacementMap(shard_ids(4))
        placement.partition(UNITS)
        moved = placement.rebalance(shard_ids(5), UNITS)
        # Adding a fifth shard should move ~1/5 of the units; allow a
        # wide deterministic band around the expectation.
        assert 0 < len(moved) < len(UNITS) // 2
        assert len(moved) <= 2 * (len(UNITS) // 5)

    def test_moved_units_land_on_the_new_shard_only(self):
        placement = PlacementMap(shard_ids(4))
        before = {u: placement.shard_of(u) for u in UNITS}
        moved = placement.rebalance(shard_ids(5), UNITS)
        for unit in UNITS:
            after = placement.shard_of(unit)
            if unit in moved:
                assert after == "shard4"
            else:
                assert after == before[unit]

    def test_validation(self):
        placement = PlacementMap(shard_ids(2))
        with pytest.raises(ValueError):
            placement.rebalance([], UNITS)
        with pytest.raises(ValueError):
            placement.rebalance(["a", "a"], UNITS)
        with pytest.raises(ValueError):
            PlacementMap([])


class TestWeightedAssignment:
    def test_maps_steps_to_shard_ids(self):
        shards = shard_ids(2)
        groups = weighted_assignment(
            4, shards, weights=[5.0, 1.0, 1.0, 1.0]
        )
        assert set(groups) == set(shards)
        flat = sorted(s for steps in groups.values() for s in steps)
        assert flat == [0, 1, 2, 3]
        assert groups["shard0"] == [0]

    def test_uniform_default(self):
        groups = weighted_assignment(6, shard_ids(3))
        assert sorted(len(v) for v in groups.values()) == [2, 2, 2]
