"""D1 — derived-data cache: complex-test revisit workload.

Runs the same revisit schedule (3 snapshots x 3 passes of the complex
op-set) with the derived cache enabled, disabled, and enabled under a
squeezed memory budget; emits ``BENCH_derived_cache.json``.

Acceptance bars (the issue's criteria, asserted here):

* >= 2x compute-wall speedup with the cache on vs off;
* rendered output bit-identical between the two;
* under the squeezed budget the cache visibly gives bytes back (entries
  evicted, hits drop) while unit loads still complete.
"""

import json
import os

import pytest

from repro.bench.derived import (
    derived_cache_json,
    image_bytes,
    run_revisit,
    scenario_row,
    unit_bytes_estimate,
)
from repro.bench.workloads import ensure_dataset

DATA_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), ".data"
)

UNIQUE_STEPS = 3
PASSES = 3
GENEROUS_MEM_MB = 256.0


@pytest.fixture(scope="module")
def revisit_dataset():
    """Small dedicated dataset: the revisit schedule re-processes it 3x,
    so a modest scale still produces meaningful kernel work."""
    return ensure_dataset(DATA_ROOT, scale=0.15, n_steps=UNIQUE_STEPS,
                          files_per_snapshot=2)


@pytest.fixture(scope="module")
def scenario_runs(revisit_dataset, tmp_path_factory):
    """All three scenarios over the identical schedule."""
    unit_bytes = unit_bytes_estimate(revisit_dataset)
    squeezed_mb = max(unit_bytes * 1.6 / (1 << 20), 1.0)
    runs = {}
    for scenario, derived, mem_mb in (
        ("cache_on", True, GENEROUS_MEM_MB),
        ("cache_off", False, GENEROUS_MEM_MB),
        ("squeezed", True, squeezed_mb),
    ):
        out_dir = str(tmp_path_factory.mktemp(f"frames_{scenario}"))
        result = run_revisit(
            revisit_dataset, derived_cache=derived, mem_mb=mem_mb,
            unique_steps=UNIQUE_STEPS, passes=PASSES, out_dir=out_dir,
        )
        runs[scenario] = (mem_mb, result)
    return runs


def test_derived_cache_speedup_and_identity(scenario_runs, results_dir):
    """Cache on vs off: >= 2x compute wall, bit-identical frames."""
    _mem_on, on = scenario_runs["cache_on"]
    _mem_off, off = scenario_runs["cache_off"]
    assert on.n_snapshots == off.n_snapshots == UNIQUE_STEPS * PASSES
    assert on.triangles == off.triangles

    frames_on = image_bytes(on)
    frames_off = image_bytes(off)
    assert frames_on.keys() == frames_off.keys() and frames_on
    assert all(
        frames_on[name] == frames_off[name] for name in frames_on
    ), "cache-on rendered output differs from cache-off"

    stats_on = on.gbo_stats
    assert stats_on["derived_hits"] > 0
    # Revisited frames are served from the memo cache, so at least the
    # (passes - 1) repeat sweeps' compute disappears.
    speedup = off.compute_wall_s / on.compute_wall_s
    assert speedup >= 2.0, (
        f"compute speedup {speedup:.2f}x < 2x "
        f"(on {on.compute_wall_s:.3f}s vs off {off.compute_wall_s:.3f}s)"
    )


def test_derived_cache_squeezed_budget(scenario_runs):
    """Below working-set budget: cache bytes are reclaimed for demand
    loads (evictions fire, hits drop), yet every unit still loads and
    the output stays correct."""
    _mem_on, on = scenario_runs["cache_on"]
    _mem_sq, squeezed = scenario_runs["squeezed"]
    stats = squeezed.gbo_stats
    assert squeezed.n_snapshots == UNIQUE_STEPS * PASSES
    assert squeezed.triangles == on.triangles
    assert stats["derived_evictions"] > 0, (
        "squeezed budget never evicted a derived entry"
    )
    assert stats["derived_hits"] < on.gbo_stats["derived_hits"], (
        "squeezed run should lose cache hits to eviction"
    )
    # The cache yielded memory to real loads rather than wedging them:
    # every scheduled visit completed (reloads allowed, deadlocks not).
    frames_on = image_bytes(on)
    frames_squeezed = image_bytes(squeezed)
    assert frames_on.keys() == frames_squeezed.keys()
    assert all(
        frames_on[name] == frames_squeezed[name] for name in frames_on
    ), "squeezed-budget rendered output differs"


def test_derived_cache_json(scenario_runs, results_dir):
    rows = [
        scenario_row(name, mem_mb, result)
        for name, (mem_mb, result) in scenario_runs.items()
    ]
    _mem_on, on = scenario_runs["cache_on"]
    _mem_off, off = scenario_runs["cache_off"]
    frames_on = image_bytes(on)
    frames_off = image_bytes(off)
    path = derived_cache_json(
        results_dir, rows,
        workload={
            "test": "complex", "mode": "G",
            "unique_steps": UNIQUE_STEPS, "passes": PASSES,
        },
        speedup_compute=off.compute_wall_s / on.compute_wall_s,
        bit_identical=(
            frames_on.keys() == frames_off.keys()
            and all(
                frames_on[k] == frames_off[k] for k in frames_on
            )
        ),
    )
    with open(path) as f:
        payload = json.load(f)
    assert payload["experiment"] == "derived_cache"
    assert {row["scenario"] for row in payload["scenarios"]} == {
        "cache_on", "cache_off", "squeezed"
    }
    assert payload["speedup_compute"] >= 2.0
    assert payload["bit_identical"] is True
    assert payload["calibration_s"] > 0
    assert os.path.basename(path) == "BENCH_derived_cache.json"
