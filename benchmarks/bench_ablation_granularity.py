"""A1 — prefetch-granularity ablation (section 3.2 design knob).

GODIVA lets developers pick the processing-unit granularity: whole
time-step snapshots (Voyager's choice), single files, or finer. This
ablation splits each snapshot's traffic into 1/2/8/32 units under a
fixed memory window and measures visible I/O on the simulated Engle:
finer units shrink the first-unit cold wait but a fixed window holds
less lookahead.
"""

import pytest

from repro.bench.ablations import granularity_ablation, split_units
from repro.bench.figure3 import trace_all_workloads
from repro.simulate.machine import ENGLE
from repro.simulate.runner import simulate_voyager


@pytest.fixture(scope="module")
def workload(paper_scale_snapshot):
    return trace_all_workloads(
        paper_scale_snapshot.directory, n_snapshots=16
    )["medium"]


def test_granularity_sweep(benchmark, workload, results_dir):
    table = benchmark.pedantic(
        granularity_ablation,
        args=(ENGLE, workload),
        kwargs={"granularities": (1, 2, 8, 32)},
        rounds=1,
        iterations=1,
    )
    table.emit(results_dir)
    firsts = {row[0]: row[3] for row in table.rows}
    # The cold first wait shrinks proportionally with unit size.
    assert firsts[32] < firsts[8] < firsts[1]


def test_split_units_conserves_work(workload):
    refined = split_units(workload, 8)
    assert refined.n_snapshots == workload.n_snapshots * 8
    total_bytes = refined.godiva.bytes_read * refined.n_snapshots
    assert total_bytes == pytest.approx(
        workload.godiva.bytes_read * workload.n_snapshots
    )
    assert refined.compute_s * 8 == pytest.approx(workload.compute_s)


def test_equal_total_io_across_granularity(workload):
    """Granularity redistributes, never changes, the total traffic."""
    base = simulate_voyager(ENGLE, workload, "G")
    fine = simulate_voyager(ENGLE, split_units(workload, 4), "G")
    assert fine.visible_io_s == pytest.approx(
        base.visible_io_s, rel=1e-9
    )
