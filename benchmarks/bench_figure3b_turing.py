"""F3b / N5 — Figure 3(b): Voyager running time on a Turing node.

Same harness as Figure 3(a) but on the simulated dual-CPU cluster node,
with the paper's four versions: O, G, TG1 (a competing compute-bound
job occupies the second CPU), and TG2 (Voyager alone). Paper targets:
G visible-I/O reduction 16.0 % / 30.0 % / 10.7 %; TG hides 81.1-90.8 %
of I/O; overall input-cost reduction up to 93.2 % / 90.3 % / 94.7 %.
"""

import pytest

from repro.bench.figure3 import (
    PAPER_TURING,
    TESTS,
    derived_metrics_table,
    panel_table,
    run_figure3_panel,
    trace_all_workloads,
)
from repro.simulate.machine import TURING


@pytest.fixture(scope="module")
def workloads(paper_scale_snapshot):
    return trace_all_workloads(
        paper_scale_snapshot.directory, n_snapshots=32
    )


def test_figure3b(benchmark, workloads, results_dir):
    panel = benchmark.pedantic(
        run_figure3_panel,
        args=(TURING, workloads),
        kwargs={"seeds": (0, 1, 2, 3, 4), "jitter": 0.15},
        rounds=1,
        iterations=1,
    )
    panel_table(
        panel,
        "Figure 3(b) — Voyager running time on a Turing node (2 CPUs)",
    ).emit(results_dir)
    derived_metrics_table(
        panel, "Turing derived metrics vs paper", paper=PAPER_TURING
    ).emit(results_dir)

    for test in TESTS:
        io_g = panel.mean_visible(test, "G")
        t_g = panel.mean_total(test, "G")
        tg1 = panel.mean_total(test, "TG1")
        tg2 = panel.mean_total(test, "TG2")
        # Both TG variants dramatically reduce visible I/O; the hidden
        # fraction lands in (or near) the paper's 81-91 % band.
        for version in ("TG1", "TG2"):
            assert panel.mean_visible(test, version) < 0.2 * io_g
        hidden = (t_g - tg2) / io_g
        assert 0.75 < hidden < 0.99
        # TG1 (with competitor) is never faster than TG2.
        assert tg1 >= tg2

    # The dual-CPU hidden fractions dwarf Engle's (Figure 3 contrast).
    from repro.simulate.machine import ENGLE
    from repro.bench.figure3 import run_figure3_panel as run_panel

    engle = run_panel(ENGLE, workloads, seeds=(0,), jitter=0.15)
    for test in TESTS:
        hidden_turing = (
            panel.mean_total(test, "G") - panel.mean_total(test, "TG2")
        ) / panel.mean_visible(test, "G")
        hidden_engle = (
            engle.mean_total(test, "G") - engle.mean_total(test, "TG")
        ) / engle.mean_visible(test, "G")
        assert hidden_turing > 2 * hidden_engle
