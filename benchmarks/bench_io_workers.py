"""W1 — I/O worker-pool scaling: visible I/O vs pool size.

Sweeps ``io_workers`` over the multi-file-per-snapshot workload in both
measurement domains:

* the real pipeline with paced per-file reads (wall-clock timings follow
  the disk cost model; sleeping readers overlap across workers);
* the simulated 2-CPU Turing node, replaying the traced medium test
  with snapshots split into four file units.

Emits the result tables plus ``BENCH_io_workers.json`` (machine-readable
visible-I/O per worker count) into ``benchmarks/results``.
"""

import json
import os

import pytest

from repro.bench.workers import (
    real_sweep_table,
    run_real_worker_sweep,
    run_sim_worker_sweep,
    sim_sweep_table,
    worker_sweep_json,
)
from repro.simulate.machine import TURING
from repro.simulate.workload import trace_workload


@pytest.fixture(scope="module")
def medium_workload(paper_scale_snapshot):
    return trace_workload(
        paper_scale_snapshot.directory, "medium", n_snapshots=32
    )


def test_io_workers_real(benchmark, bench_dataset, results_dir):
    rows = benchmark.pedantic(
        run_real_worker_sweep,
        args=(bench_dataset,),
        kwargs={"workers": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    real_sweep_table(
        rows,
        "W1 — visible I/O vs io_workers (real pipeline, paced reads)",
    ).emit(results_dir)

    by_count = {row["io_workers"]: row for row in rows}
    # The acceptance bar: a 4-worker pool hides more I/O than the
    # paper-faithful single thread on the multi-file workload.
    assert by_count[4]["visible_io_s"] < by_count[1]["visible_io_s"]
    assert by_count[4]["wall_s"] < by_count[1]["wall_s"]
    # Utilization spreads across the pool: every worker loaded units.
    for report in by_count[4]["worker_report"]:
        assert report["units_loaded"] > 0


def test_io_workers_simulated(medium_workload, results_dir):
    rows = run_sim_worker_sweep(
        TURING, medium_workload, workers=(1, 2, 4, 8),
        files_per_snapshot=4,
    )
    sim_sweep_table(
        rows,
        "W1 — visible I/O vs io_workers (simulated Turing, 2 CPUs)",
    ).emit(results_dir)

    by_count = {row["io_workers"]: row for row in rows}
    assert by_count[4]["visible_io_s"] < by_count[1]["visible_io_s"]
    # Diminishing returns, not regressions: 8 workers should not be
    # dramatically worse than 4 (disk contention bounds the win).
    assert by_count[8]["total_s"] <= by_count[4]["total_s"] * 1.10


def test_io_workers_json(bench_dataset, medium_workload, results_dir):
    real_rows = run_real_worker_sweep(
        bench_dataset, workers=(1, 2, 4), steps=4
    )
    sim_rows = run_sim_worker_sweep(
        TURING, medium_workload, workers=(1, 2, 4, 8),
        files_per_snapshot=4,
    )
    path = worker_sweep_json(results_dir, real_rows, sim_rows)
    with open(path) as f:
        payload = json.load(f)
    assert payload["experiment"] == "io_worker_sweep"
    assert [r["io_workers"] for r in payload["real_pipeline"]] == [1, 2, 4]
    assert [r["io_workers"] for r in payload["simulated"]] == [1, 2, 4, 8]
    assert all(
        "visible_io_s" in r
        for r in payload["real_pipeline"] + payload["simulated"]
    )
    assert os.path.basename(path) == "BENCH_io_workers.json"
