"""A4 — scientific-format overhead (section 1's motivating observation).

The paper notes that files "written using popular, standardized
scientific data libraries [HDF, netCDF, FITS] have at visualization time
a higher input cost than do plain binary files". This ablation reads the
same snapshot contents through all three on-disk layouts we implement —
SDF (HDF4-like tail directory), CDF (netCDF-like front header), and one
plain-binary file per array — and compares read calls, positioning
operations, and virtual I/O time; it also verifies that the GODIVA read
path is fully format-independent (identical resident bytes either way).
"""

import os

import numpy as np
import pytest

from repro.bench.report import Table
from repro.core.database import GBO
from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.io.cdf import CdfReader
from repro.io.disk import ENGLE_DISK, IoStats
from repro.io.plainbin import read_plain_array, write_plain_array
from repro.io.readers import load_snapshot_records
from repro.io.sdf import SdfReader


@pytest.fixture(scope="module")
def format_datasets(tmp_path_factory):
    root = tmp_path_factory.mktemp("formats")
    manifests = {}
    for fmt in ("sdf", "cdf"):
        directory = str(root / fmt)
        manifests[fmt] = generate_dataset(
            SnapshotSpec(config=TitanConfig.scaled(0.5), n_steps=1,
                         files_per_snapshot=8, file_format=fmt),
            directory,
        )
    return manifests


def test_format_read_cost(benchmark, format_datasets, results_dir,
                          tmp_path):
    def measure():
        rows = {}
        for fmt, reader_cls in (("sdf", SdfReader), ("cdf", CdfReader)):
            stats = IoStats()
            manifest = format_datasets[fmt]
            arrays = {}
            for path in manifest.snapshot_paths(0):
                with reader_cls(path, stats=stats,
                                profile=ENGLE_DISK) as reader:
                    for name in reader.dataset_names:
                        arrays[name] = reader.read(name)
            rows[fmt] = (stats.snapshot(), arrays)
        # Plain binary: the raw dump a scientific code would write
        # without a data library — one file per original snapshot file,
        # all arrays concatenated, read back in a single sequential
        # pass each (the application hard-codes the layout).
        pbin_dir = tmp_path / "pbin"
        os.makedirs(pbin_dir, exist_ok=True)
        reference = rows["sdf"][1]
        manifest = format_datasets["sdf"]
        per_file = {}
        for path in manifest.snapshot_paths(0):
            with SdfReader(path) as reader:
                blob = b"".join(
                    reader.read(name).tobytes()
                    for name in reader.dataset_names
                )
            per_file[os.path.basename(path)] = blob
        for index, blob in enumerate(per_file.values()):
            write_plain_array(
                str(pbin_dir / f"{index}.pbin"),
                np.frombuffer(blob, dtype=np.uint8),
            )
        stats = IoStats()
        for index in range(len(per_file)):
            read_plain_array(str(pbin_dir / f"{index}.pbin"),
                             stats=stats, profile=ENGLE_DISK)
        rows["plain"] = (stats.snapshot(), reference)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        title="A4 — format read cost (same snapshot contents)",
        headers=("format", "read calls", "seeks", "settles",
                 "virtual I/O (s)"),
    )
    for fmt in ("sdf", "cdf", "plain"):
        snap = rows[fmt][0]
        table.add(fmt, snap["read_calls"], snap["seeks"],
                  snap["settles"], snap["virtual_seconds"])
    table.note(
        "paper section 1: scientific formats cost more at read time "
        "than plain binary; header-first (CDF) beats tail-directory "
        "(SDF)"
    )
    table.emit(results_dir)

    # Contents identical across formats.
    sdf_arrays, cdf_arrays = rows["sdf"][1], rows["cdf"][1]
    assert set(sdf_arrays) == set(cdf_arrays)
    for name in sdf_arrays:
        assert np.array_equal(sdf_arrays[name], cdf_arrays[name])
    # Cost ordering: plain < cdf < sdf.
    virtual = {
        fmt: rows[fmt][0]["virtual_seconds"]
        for fmt in ("sdf", "cdf", "plain")
    }
    assert virtual["plain"] < virtual["cdf"] < virtual["sdf"]


def test_godiva_resident_bytes_format_independent(format_datasets):
    """GODIVA's view of the data is identical no matter the format."""
    resident = {}
    for fmt, manifest in format_datasets.items():
        with GBO(mem_mb=256, background_io=False) as gbo:
            load_snapshot_records(gbo, manifest, step=0)
            resident[fmt] = (
                gbo.record_count("solid"), gbo.mem_used_bytes
            )
    assert resident["sdf"] == resident["cdf"]
