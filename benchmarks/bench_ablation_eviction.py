"""A3 — eviction-policy ablation under interactive access patterns.

Section 3.3: GODIVA "uses the LRU algorithm for cache replacement";
section 1 motivates it with users who "switch back and forth between
snapshot images from two different time-steps". This ablation runs real
ApolloSession traces with a constrained budget under LRU, FIFO and MRU
and reports hit rates and induced I/O.
"""

import pytest

from repro.bench.ablations import eviction_ablation


def test_eviction_policies_backforth(benchmark, bench_dataset,
                                     results_dir):
    table = benchmark.pedantic(
        eviction_ablation,
        args=(bench_dataset.directory,),
        kwargs={"pattern": "backforth", "n_views": 40,
                "mem_mb": 0.6},
        rounds=1,
        iterations=1,
    )
    table.emit(results_dir)
    by_policy = {row[0]: row for row in table.rows}
    # LRU matches the paper's choice: at least as good as FIFO and
    # strictly better than MRU under revisit locality.
    lru_hits = by_policy["lru"][2]
    assert lru_hits >= by_policy["fifo"][2]
    assert lru_hits > by_policy["mru"][2]
    assert by_policy["lru"][4] < by_policy["mru"][4]  # bytes read


def test_eviction_policies_browse(bench_dataset, results_dir):
    table = eviction_ablation(
        bench_dataset.directory, pattern="browse", n_views=40,
        mem_mb=0.6,
    )
    table.emit(results_dir)
    by_policy = {row[0]: row for row in table.rows}
    assert by_policy["lru"][2] >= by_policy["mru"][2]


def test_scan_defeats_caching(bench_dataset, results_dir):
    """Batch-like scans are read-once: caching cannot help (the paper's
    rationale for prefetching instead, section 1)."""
    table = eviction_ablation(
        bench_dataset.directory, pattern="scan", n_views=24,
        mem_mb=0.6,
    )
    table.emit(results_dir)
    by_policy = {row[0]: row for row in table.rows}
    assert by_policy["lru"][2] == 0   # zero hits for LRU on a scan
