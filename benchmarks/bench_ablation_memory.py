"""A2 — memory-budget ablation (section 3.2: setMemSpace).

The paper argues the memory requirement is "similar to that of the
traditional double buffering approach": one unit of headroom beyond the
working set already enables overlap. The sweep varies the window from 1
unit (no overlap possible) upward on the simulated machines, plus a real
-pipeline check that a GBO with a tight budget still completes via
eviction.
"""

import pytest

from repro.bench.ablations import memory_ablation
from repro.bench.figure3 import trace_all_workloads
from repro.simulate.machine import ENGLE, TURING
from repro.viz.voyager import Voyager, VoyagerConfig


@pytest.fixture(scope="module")
def workload(paper_scale_snapshot):
    return trace_all_workloads(
        paper_scale_snapshot.directory, n_snapshots=16
    )["simple"]


def test_memory_window_sweep(benchmark, workload, results_dir):
    def sweep():
        return (
            memory_ablation(ENGLE, workload),
            memory_ablation(TURING, workload),
        )

    engle_table, turing_table = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    engle_table.emit(results_dir)
    turing_table.emit(results_dir)

    for table in (engle_table, turing_table):
        visible = {row[0]: row[2] for row in table.rows}
        # window=1 cannot overlap; window=2 (double buffering) already
        # captures most of the benefit; diminishing returns after.
        assert visible[2] < 0.7 * visible[1]
        assert visible[16] <= visible[2]
        gain_2 = visible[1] - visible[2]
        gain_16 = visible[4] - visible[16]
        assert gain_2 > gain_16


def test_real_pipeline_completes_under_tight_budget(
    benchmark, bench_dataset, results_dir
):
    """The real TG Voyager under a budget holding ~2 snapshots: the
    I/O thread blocks and resumes; results identical, evictions zero
    (delete_unit frees memory before pressure forces eviction)."""
    def run(mem_mb):
        return Voyager(VoyagerConfig(
            data_dir=bench_dataset.directory,
            test="simple",
            mode="TG",
            mem_mb=mem_mb,
            render=False,
        )).run()

    roomy = benchmark.pedantic(run, args=(256.0,), rounds=1,
                               iterations=1)
    tight = run(1.0)
    assert tight.triangles == roomy.triangles
    assert tight.bytes_read == roomy.bytes_read
    assert tight.gbo_stats["units_prefetched"] == \
        roomy.gbo_stats["units_prefetched"]
