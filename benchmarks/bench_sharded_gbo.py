"""SH1 — sharded GBO: complex test, real shard fleets + scaling sweep.

Runs the full complex op-set serially, then through real 2- and
4-shard :class:`~repro.parallel.sharded.ShardedGBO` fleets (spawned
processes over shared-memory arenas), and the simulated shard sweep;
emits ``BENCH_sharded_gbo.json``.

Acceptance bars (the issue's criteria, asserted here):

* frames at 2 and 4 shards byte-for-byte identical to the serial GBO;
* >= 2x aggregate throughput at 4 shards vs 1 in the simulator sweep.
"""

import os

import pytest

from repro.bench.sharded import (
    default_sweep,
    frames_identical,
    run_serial,
    run_sharded,
    scenario_row,
    serial_frames,
    sharded_gbo_json,
)
from repro.bench.workloads import ensure_dataset

DATA_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), ".data"
)

#: Big enough that every shard owns work at 4 shards and the complex
#: op-set exercises derived products; small enough for CI seconds.
SCALE = 0.2
STEPS = 6
TEST = "complex"
MEM_MB = 256.0

SHARD_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def sharded_dataset():
    return ensure_dataset(DATA_ROOT, scale=SCALE, n_steps=STEPS,
                          files_per_snapshot=2)


@pytest.fixture(scope="module")
def serial_run(sharded_dataset, tmp_path_factory):
    out_dir = str(tmp_path_factory.mktemp("frames_serial"))
    result = run_serial(sharded_dataset, test=TEST, mem_mb=MEM_MB,
                        out_dir=out_dir)
    return result, serial_frames(result)


@pytest.fixture(scope="module")
def sharded_runs(sharded_dataset):
    return {
        n: run_sharded(sharded_dataset, n, test=TEST, mem_mb=MEM_MB)
        for n in SHARD_COUNTS
    }


@pytest.fixture(scope="module")
def sweep():
    return default_sweep()


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_bit_identity(serial_run, sharded_runs, n_shards):
    """Every shard count renders the serial build's exact bytes."""
    result, frames = serial_run
    sharded = sharded_runs[n_shards]
    assert len(sharded.frames) == STEPS
    assert sharded.triangles == result.triangles
    assert frames_identical(frames, sharded), (
        f"{n_shards}-shard frames differ from the serial build"
    )


def test_sharded_work_matches_placement(sharded_runs):
    """Each shard renders exactly its rendezvous-assigned steps (a
    shard may legitimately draw no units when units/shard is thin)."""
    for result in sharded_runs.values():
        frames_by_shard = {
            s.shard_id: s.n_frames for s in result.shards
        }
        for shard_id, steps in result.assignment.items():
            assert frames_by_shard[shard_id] == len(steps)


def test_sweep_scaling(sweep):
    """Simulated sweep: >= 2x aggregate throughput at 4 shards."""
    base = sweep.point(1)
    four = sweep.point(4)
    ratio = four.throughput_units_s / base.throughput_units_s
    assert ratio >= 2.0, (
        f"4-shard aggregate throughput {ratio:.2f}x < 2x "
        f"({four.throughput_units_s:.2f} vs "
        f"{base.throughput_units_s:.2f} units/s)"
    )
    # Monotone through the small counts — placement skew only bites
    # once units/shard gets thin.
    speedups = [p.speedup for p in sweep.points[:4]]
    assert speedups == sorted(speedups)


def test_sharded_json(serial_run, sharded_runs, sweep, results_dir):
    _result, frames = serial_run
    rows = [
        scenario_row(f"sharded{n}", n, run)
        for n, run in sorted(sharded_runs.items())
    ]
    identical = all(
        frames_identical(frames, run) for run in sharded_runs.values()
    )
    ratio = (sweep.point(4).throughput_units_s
             / sweep.point(1).throughput_units_s)
    path = sharded_gbo_json(
        results_dir, rows, sweep,
        workload={
            "test": TEST, "scale": SCALE, "steps": STEPS,
            "mem_mb": MEM_MB,
        },
        bit_identical=identical,
        sweep_speedup_4=ratio,
    )
    assert os.path.exists(path)
