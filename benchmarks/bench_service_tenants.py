"""S1 — multi-tenant service: fairness and asyncio client scale.

Two halves over one shared engine; emits
``BENCH_service_tenants.json``.

Acceptance bars (the issue's criteria, asserted here):

* >= 32 concurrent asyncio clients served by one shared engine (we
  run 64) with zero leaked sessions;
* per-tenant budget isolation held on the steady-vs-thrash workload —
  the thrashing tenant churns (evictions fire) while the steady tenant
  inside its carve-out suffers zero evictions, unfair or otherwise.
"""

import json

import pytest

from repro.bench.tenants import (
    run_async_scale,
    run_fairness,
    service_tenants_json,
)

N_CLIENTS = 64


@pytest.fixture(scope="module")
def fairness_result():
    """Deterministic steady-vs-thrash workload on a 16 MB service."""
    return run_fairness(mem_mb=16.0, io_workers=2)


@pytest.fixture(scope="module")
def scale_result():
    """64 concurrent asyncio clients on a 32 MB shared engine."""
    return run_async_scale(n_clients=N_CLIENTS)


def test_budget_isolation_held(fairness_result):
    """Thrasher churns; steady tenant never loses a byte."""
    steady = fairness_result.outcomes["steady"]
    thrash = fairness_result.outcomes["thrash"]
    assert thrash.evictions > 0, "thrash tenant never churned"
    assert steady.evictions == 0, (
        f"steady tenant lost {steady.evictions} entries inside its "
        "carve-out"
    )
    assert fairness_result.total_unfair_evictions == 0
    assert fairness_result.isolation_held


def test_async_client_scale(scale_result):
    """>= 32 concurrent asyncio clients (bar), 64 run, none leaked."""
    assert scale_result.n_clients >= 32
    assert scale_result.clients_served == scale_result.n_clients
    assert scale_result.sessions_leaked == 0
    assert scale_result.unfair_evictions == 0


def test_service_tenants_json(fairness_result, scale_result,
                              results_dir):
    path = service_tenants_json(
        results_dir, fairness_result, scale_result
    )
    with open(path) as f:
        payload = json.load(f)
    assert payload["experiment"] == "service_tenants"
    assert payload["fairness"]["isolation_held"] is True
    assert payload["async_scale"]["clients_served"] == N_CLIENTS
    assert payload["calibration_s"] > 0
