"""P1 — process-backed compute plane: serial vs thread4 vs process4.

Runs the full complex op-set with the compute plane serial, threaded
(4 workers) and process-backed (4 workers) over the identical TG
schedule; emits ``BENCH_compute_proc.json``.

Acceptance bars (the issue's criteria, asserted here):

* rendered frames bit-identical between every backend and serial;
* the process backend actually dispatches tokenized tasks to worker
  processes (``compute_dispatches > 0``);
* the deterministic four-core simulator sweep shows >= 3x compute-wall
  speedup at process/4 workers, beating thread/4 (the GIL model) —
  host-independent, so the bar holds on single-core CI boxes where
  real walls cannot scale.
"""

import os

import pytest

from repro.bench.compute_proc import (
    compute_proc_json,
    run_compute,
    run_compute_sweep,
    scenario_row,
    sweep_rows,
    sweep_speedup,
)
from repro.bench.derived import image_bytes
from repro.bench.workloads import ensure_dataset

DATA_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), ".data"
)

#: Same dense workload shape as the R1 tiles bench (~28k triangles a
#: frame) — and the same cached dataset.
SCALE = 0.3
STEPS = 3

SCENARIOS = (
    ("serial", 1, "thread"),
    ("thread4", 4, "thread"),
    ("process4", 4, "process"),
)


@pytest.fixture(scope="module")
def compute_dataset():
    return ensure_dataset(DATA_ROOT, scale=SCALE, n_steps=STEPS,
                          files_per_snapshot=2)


@pytest.fixture(scope="module")
def compute_runs(compute_dataset, tmp_path_factory):
    """Every scenario over the identical schedule (best-of-2 walls)."""
    runs = {}
    for scenario, workers, backend in SCENARIOS:
        out_dir = str(tmp_path_factory.mktemp(f"frames_{scenario}"))
        runs[scenario] = (workers, backend, run_compute(
            compute_dataset, compute_workers=workers,
            compute_backend=backend, out_dir=out_dir,
        ))
    return runs


@pytest.fixture(scope="module")
def sim_sweep():
    return run_compute_sweep()


def test_compute_proc_bit_identity(compute_runs):
    """Every backend renders the serial build's exact bytes."""
    _w, _b, serial = compute_runs["serial"]
    frames_serial = image_bytes(serial)
    assert frames_serial
    for scenario in ("thread4", "process4"):
        _w, _b, run = compute_runs[scenario]
        frames = image_bytes(run)
        assert frames.keys() == frames_serial.keys()
        assert all(
            frames[name] == frames_serial[name] for name in frames
        ), f"{scenario} rendered output differs from serial"


def test_compute_proc_dispatches(compute_runs):
    """The process backend ships tokenized tasks to real workers."""
    _w, _b, run = compute_runs["process4"]
    stats = run.gbo_stats
    assert stats["compute_tasks"] > 0
    assert stats["compute_dispatches"] > 0, (
        "process backend never dispatched a task to a worker process"
    )
    assert stats["compute_token_bytes"] > 0, (
        "process backend never shipped a shared-memory token"
    )


def test_compute_proc_sim_sweep(sim_sweep):
    """Four-core model host: process/4 >= 3x, beating thread/4."""
    process4 = sweep_speedup(sim_sweep, "process", 4)
    thread4 = sweep_speedup(sim_sweep, "thread", 4)
    assert process4 >= 3.0, (
        f"simulated process/4 compute speedup {process4:.2f}x < 3x"
    )
    assert thread4 < process4, (
        f"thread/4 ({thread4:.2f}x) should trail process/4 "
        f"({process4:.2f}x) under the GIL model"
    )


def test_compute_proc_json(compute_runs, sim_sweep, results_dir):
    rows = [
        scenario_row(name, workers, backend, result)
        for name, (workers, backend, result) in compute_runs.items()
    ]
    _w, _b, serial = compute_runs["serial"]
    _w, _b, process4 = compute_runs["process4"]
    identical = image_bytes(serial) == image_bytes(process4)
    path = compute_proc_json(
        results_dir, rows,
        workload={
            "test": "complex", "mode": "TG",
            "scale": SCALE, "steps": STEPS,
        },
        sweep=sweep_rows(sim_sweep),
        speedup_compute=(
            serial.compute_wall_s / process4.compute_wall_s
            if process4.compute_wall_s > 0 else float("inf")
        ),
        sim_speedup_process4=sweep_speedup(sim_sweep, "process", 4),
        sim_speedup_thread4=sweep_speedup(sim_sweep, "thread", 4),
        bit_identical=identical,
    )
    assert os.path.exists(path)
