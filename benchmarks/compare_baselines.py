#!/usr/bin/env python
"""CLI for the bench-regression guard.

Compares the current benchmark artifacts in ``benchmarks/results/``
against the committed snapshots in ``benchmarks/baselines/`` and exits
non-zero on a >tolerance regression (see ``repro.bench.baseline`` for
the calibration scheme). ``--update`` reseeds the baselines from the
current results instead.

Usage (from the repo root, after running the benches)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_core_micro.py \
        --benchmark-json benchmarks/results/benchmark_core_micro.json
    PYTHONPATH=src python -m pytest -q benchmarks/bench_derived_cache.py
    PYTHONPATH=src python benchmarks/compare_baselines.py
"""

import argparse
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))

from repro.bench.baseline import (  # noqa: E402
    DEFAULT_TOLERANCE,
    compare_all,
    update_baselines,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="bench-regression guard vs committed baselines"
    )
    parser.add_argument(
        "--results", default=os.path.join(HERE, "results"),
        help="directory with current bench artifacts",
    )
    parser.add_argument(
        "--baselines", default=os.path.join(HERE, "baselines"),
        help="directory with committed baseline snapshots",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get(
            "REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE
        )),
        help="allowed fractional regression (default 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="reseed the baselines from the current results",
    )
    args = parser.parse_args(argv)

    if args.update:
        written = update_baselines(args.results, args.baselines)
        if not written:
            print("no bench artifacts found to baseline", file=sys.stderr)
            return 1
        for path in written:
            print(f"baseline written: {os.path.relpath(path)}")
        return 0

    failures = compare_all(args.results, args.baselines, args.tolerance)
    if failures:
        print(f"{len(failures)} bench regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench-regression guard: OK (within "
          f"{args.tolerance:.0%} of baselines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
