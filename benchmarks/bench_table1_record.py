"""T1 — Table 1 / Figure 2: the sample fluid record type and instance.

Regenerates the paper's Table 1 (field name / data type / buffer size)
and Figure 2's per-field sizes (11 / 9 / 808 / 808 / 80000 / 80000
bytes), and micro-benchmarks the record-operation and query interfaces
on that record type.
"""

import pytest

from repro.bench.report import Table
from repro.core.database import GBO
from repro.core.schema import fluid_sample_schema
from repro.core.types import UNKNOWN
from repro.gen.structured_fluid import make_fluid_block_record


def test_table1_schema(results_dir):
    """Print Table 1 exactly as the paper lays it out."""
    schema = fluid_sample_schema()
    table = Table(
        title="Table 1 — sample field types in the fluid record type",
        headers=("field name", "data type", "buffer size"),
    )
    for field in schema.fields:
        size = "UNKNOWN" if field.size is UNKNOWN else field.size
        table.add(field.name, field.data_type.name, size)
    table.note("keys: " + ", ".join(schema.key_names))
    table.emit(results_dir)
    assert [f.name for f in schema.fields][:2] == [
        "block id", "time-step id"
    ]


def test_figure2_record_instance(results_dir):
    """Build the Figure 2 record and report its exact buffer sizes."""
    with GBO(mem_mb=16) as gbo:
        record = make_fluid_block_record(gbo, block_index=1, t=25e-6)
        table = Table(
            title="Figure 2 — record instance buffer sizes",
            headers=("field", "size (bytes)", "paper"),
        )
        expected = {
            "block id": 11,
            "time-step id": 9,
            "x coordinates": 808,
            "y coordinates": 808,
            "pressure": 80_000,
            "temperature": 80_000,
        }
        for name, paper_size in expected.items():
            measured = record.field(name).size
            table.add(name, measured, paper_size)
            assert measured == paper_size
        table.emit(results_dir)


def test_bench_record_creation(benchmark):
    """Record-operation throughput: create+fill+commit+delete cycle.

    Deleting inside the cycle keeps memory flat no matter how many
    iterations the benchmark harness chooses to run.
    """
    with GBO(mem_mb=256) as gbo:
        counter = {"i": 0}

        def cycle():
            counter["i"] += 1
            record = make_fluid_block_record(
                gbo, block_index=counter["i"], t=25e-6
            )
            gbo.delete_record(record)

        benchmark(cycle)


def test_bench_key_query(benchmark):
    """getFieldBuffer key-lookup latency on a 500-record database."""
    with GBO(mem_mb=512) as gbo:
        for index in range(1, 501):
            make_fluid_block_record(gbo, block_index=index, t=25e-6)
        keys = [b"block_0250$", b"0.000025$"]

        result = benchmark(
            lambda: gbo.get_field_buffer("fluid", "pressure", keys)
        )
        assert len(result) == 10_000
