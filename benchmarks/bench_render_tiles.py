"""R1 — tiled-parallel rendering: complex test, serial vs pooled.

Runs the full complex op-set over a dense mesh with the compute plane
at 1, 2, and 4 workers; emits ``BENCH_render_tiles.json``.

Acceptance bars (the issue's criteria, asserted here):

* >= 2x compute-wall speedup at ``compute_workers=4`` vs serial;
* rendered frames bit-identical between every pool size and serial.
"""

import os

import pytest

from repro.bench.derived import image_bytes
from repro.bench.tiles import (
    render_tiles_json,
    run_tiles,
    scenario_row,
)
from repro.bench.workloads import ensure_dataset

DATA_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), ".data"
)

#: Dense enough that the serial per-triangle raster loop dominates the
#: frame (~28k triangles/frame) — the workload the tiled path exists
#: for; small enough to generate and render in seconds.
SCALE = 0.3
STEPS = 3

SCENARIOS = (
    ("serial", 1),
    ("tiled2", 2),
    ("tiled4", 4),
)


@pytest.fixture(scope="module")
def tiles_dataset():
    return ensure_dataset(DATA_ROOT, scale=SCALE, n_steps=STEPS,
                          files_per_snapshot=2)


@pytest.fixture(scope="module")
def tile_runs(tiles_dataset, tmp_path_factory):
    """Every scenario over the identical schedule (best-of-2 walls)."""
    runs = {}
    for scenario, workers in SCENARIOS:
        out_dir = str(tmp_path_factory.mktemp(f"frames_{scenario}"))
        runs[scenario] = (workers, run_tiles(
            tiles_dataset, compute_workers=workers, out_dir=out_dir,
        ))
    return runs


def test_render_tiles_bit_identity(tile_runs):
    """Every pool size renders the serial build's exact bytes."""
    _w, serial = tile_runs["serial"]
    frames_serial = image_bytes(serial)
    assert frames_serial
    for scenario in ("tiled2", "tiled4"):
        _w, run = tile_runs[scenario]
        frames = image_bytes(run)
        assert frames.keys() == frames_serial.keys()
        assert all(
            frames[name] == frames_serial[name] for name in frames
        ), f"{scenario} rendered output differs from serial"


def test_render_tiles_speedup(tile_runs):
    """Serial vs 4-worker pool: >= 2x compute wall."""
    _w, serial = tile_runs["serial"]
    _w, tiled = tile_runs["tiled4"]
    assert serial.triangles == tiled.triangles
    assert tiled.gbo_stats["compute_tasks"] > 0
    speedup = serial.compute_wall_s / tiled.compute_wall_s
    assert speedup >= 2.0, (
        f"compute speedup {speedup:.2f}x < 2x (serial "
        f"{serial.compute_wall_s:.3f}s vs tiled "
        f"{tiled.compute_wall_s:.3f}s)"
    )


def test_render_tiles_json(tile_runs, results_dir):
    rows = [
        scenario_row(name, workers, result)
        for name, (workers, result) in tile_runs.items()
    ]
    _w, serial = tile_runs["serial"]
    _w, tiled = tile_runs["tiled4"]
    identical = image_bytes(serial) == image_bytes(tiled)
    path = render_tiles_json(
        results_dir, rows,
        workload={
            "test": "complex", "mode": "TG",
            "scale": SCALE, "steps": STEPS,
        },
        speedup_compute=serial.compute_wall_s / tiled.compute_wall_s,
        bit_identical=identical,
    )
    assert os.path.exists(path)
