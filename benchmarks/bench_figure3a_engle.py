"""F3a / N2 / N3 / N4 — Figure 3(a): Voyager running time on Engle.

Traces the real pipeline over one paper-scale snapshot, replays 32
snapshots on the simulated single-CPU Engle workstation (five seeded
runs, as the paper averages five), and reports:

* the bar values — computation and visible-I/O time for O / G / TG per
  test;
* the in-text metrics with the paper's numbers side by side:
  I/O time reduction O->G (paper 17.6 % / 37.2 % / 20.1 %),
  hidden fraction (24.7 % / 33.1 % / 37.8 %),
  overall input-cost reduction (40.9 % / 60.5 % / 61.9 %).
"""

import pytest

from repro.bench.figure3 import (
    PAPER_ENGLE,
    TESTS,
    derived_metrics_table,
    panel_table,
    run_figure3_panel,
    trace_all_workloads,
)
from repro.simulate.machine import ENGLE


@pytest.fixture(scope="module")
def workloads(paper_scale_snapshot):
    return trace_all_workloads(
        paper_scale_snapshot.directory, n_snapshots=32
    )


def test_figure3a(benchmark, workloads, results_dir):
    panel = benchmark.pedantic(
        run_figure3_panel,
        args=(ENGLE, workloads),
        kwargs={"seeds": (0, 1, 2, 3, 4), "jitter": 0.15},
        rounds=1,
        iterations=1,
    )
    panel_table(
        panel, "Figure 3(a) — Voyager running time on Engle (1 CPU)"
    ).emit(results_dir)
    metrics = derived_metrics_table(
        panel, "Engle derived metrics vs paper", paper=PAPER_ENGLE
    )
    metrics.emit(results_dir)

    for test in TESTS:
        io_o = panel.mean_visible(test, "O")
        io_g = panel.mean_visible(test, "G")
        t_g = panel.mean_total(test, "G")
        t_tg = panel.mean_total(test, "TG")
        t_o = panel.mean_total(test, "O")
        # Shape assertions: G beats O on I/O; TG beats G overall but
        # slows computation; hidden fraction lands in the paper's band.
        assert io_g < io_o
        assert t_tg < t_g < t_o
        comp_g = t_g - io_g
        comp_tg = t_tg - panel.mean_visible(test, "TG")
        assert comp_tg > comp_g
        hidden = (t_g - t_tg) / io_g
        assert 0.15 < hidden < 0.55

    # Ordering across tests: medium has the largest O->G reduction.
    reductions = {
        test: 1 - panel.mean_visible(test, "G")
        / panel.mean_visible(test, "O")
        for test in TESTS
    }
    assert reductions["medium"] > reductions["complex"]
    assert reductions["medium"] > reductions["simple"]
