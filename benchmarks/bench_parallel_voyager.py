"""P1 — parallel Voyager: four workers over partitioned snapshots.

The paper's parallel experiments (four Voyager processes on Turing)
confirmed that GODIVA's sequential-mode benefit carries over because
snapshots partition with near-zero communication. This bench runs the
real pipeline with 1 and 4 in-process workers and verifies the
partitioning invariants; it also compares G vs TG in the 4-worker
configuration on the simulated Turing node.
"""

import pytest

from repro.bench.report import Table
from repro.parallel import run_parallel_voyager
from repro.viz.voyager import VoyagerConfig


def test_parallel_partitioning(benchmark, bench_dataset, results_dir):
    config = VoyagerConfig(
        data_dir=bench_dataset.directory,
        test="medium",
        mode="G",
        mem_mb=256.0,
        render=False,
    )

    def run_both():
        serial = run_parallel_voyager(config, 1, use_processes=False)
        quad = run_parallel_voyager(config, 4, use_processes=False)
        return serial, quad

    serial, quad = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = Table(
        title="P1 — parallel Voyager (4 workers vs 1, real pipeline)",
        headers=("workers", "snapshots", "bytes read",
                 "sum visible I/O (s)", "makespan proxy (virt-io s)"),
    )
    for result in (serial, quad):
        table.add(
            result.n_workers, result.n_snapshots,
            result.total_bytes_read, result.total_visible_io_s,
            max(w.virtual_io_s for w in result.workers),
        )
    table.note(
        "identical byte totals: workers read disjoint snapshots "
        "(near-zero communication, paper section 4.2)"
    )
    table.emit(results_dir)

    assert quad.total_bytes_read == serial.total_bytes_read
    assert quad.n_snapshots == serial.n_snapshots
    # Per-worker virtual I/O is ~1/4 of the serial run's.
    per_worker = max(w.virtual_io_s for w in quad.workers)
    assert per_worker < 0.5 * serial.workers[0].virtual_io_s


def test_parallel_speedup_matches_sequential_shape(
    benchmark, paper_scale_snapshot, results_dir
):
    """GODIVA's O->TG gain per worker mirrors the sequential result."""
    from repro.bench.figure3 import trace_all_workloads
    from repro.simulate.machine import TURING
    from repro.simulate.runner import simulate_voyager

    workloads = trace_all_workloads(
        paper_scale_snapshot.directory, n_snapshots=8
    )

    def simulate():
        rows = []
        for test, workload in workloads.items():
            o = simulate_voyager(TURING, workload, "O", jitter=0.15)
            tg = simulate_voyager(TURING, workload, "TG", jitter=0.15)
            rows.append((test, o, tg))
        return rows

    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    table = Table(
        title="P1 — per-worker O vs TG on simulated Turing "
              "(8-snapshot partition)",
        headers=("test", "O total (s)", "TG total (s)",
                 "overall red"),
    )
    for test, o, tg in rows:
        overall = (o.total_s - tg.total_s) / o.visible_io_s
        table.add(test, o.total_s, tg.total_s, f"{overall:.1%}")
        assert overall > 0.5
    table.emit(results_dir)
