"""P2 — parallel scaling extension: worker sweep, shared vs private disks.

Extends the paper's 4-process experiment (section 4.2) into a scaling
study on the simulated Turing cluster: 1/2/4/8 Voyager workers over a
32-snapshot series in G and TG modes, with each node owning its disk
(the paper's regime) and with all nodes contending on one shared device
(the cluster-filesystem regime). Expected shapes: near-linear speedup on
private disks; the shared disk caps the makespan at its total service
time; GODIVA's per-worker TG benefit persists at every width.
"""

import pytest

from repro.bench.figure3 import trace_all_workloads
from repro.bench.report import Table
from repro.simulate.cluster import simulate_cluster_voyager
from repro.simulate.machine import TURING


@pytest.fixture(scope="module")
def workload(paper_scale_snapshot):
    return trace_all_workloads(
        paper_scale_snapshot.directory, n_snapshots=32
    )["medium"]


def test_parallel_scaling(benchmark, workload, results_dir):
    widths = (1, 2, 4, 8)

    def sweep():
        rows = {}
        for shared in (False, True):
            for mode in ("G", "TG"):
                for n_workers in widths:
                    rows[(shared, mode, n_workers)] = \
                        simulate_cluster_voyager(
                            TURING, workload, mode, n_workers,
                            shared_disk=shared,
                        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        title="P2 — parallel Voyager scaling (simulated Turing, "
              "medium test, 32 snapshots)",
        headers=("disk", "mode", "workers", "makespan (s)",
                 "speedup", "sum visible I/O (s)"),
    )
    for shared in (False, True):
        for mode in ("G", "TG"):
            serial = rows[(shared, mode, 1)]
            for n_workers in widths:
                run = rows[(shared, mode, n_workers)]
                table.add(
                    "shared" if shared else "private",
                    mode, n_workers, run.makespan_s,
                    f"{run.speedup_vs(serial):.2f}x",
                    run.total_visible_io_s,
                )
    table.emit(results_dir)

    # Private disks: near-linear speedup at 4 workers (paper regime).
    for mode in ("G", "TG"):
        serial = rows[(False, mode, 1)]
        quad = rows[(False, mode, 4)]
        assert quad.speedup_vs(serial) > 3.2
    # TG beats G at every width and disk layout.
    for shared in (False, True):
        for n_workers in widths:
            assert rows[(shared, "TG", n_workers)].makespan_s < \
                rows[(shared, "G", n_workers)].makespan_s
    # The shared disk throttles wide TG runs below private scaling.
    assert rows[(True, "TG", 8)].makespan_s > \
        rows[(False, "TG", 8)].makespan_s
