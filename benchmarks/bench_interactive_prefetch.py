"""A5 — predictive prefetching for interactive sessions (section 5).

The paper suggests GODIVA "may also be used as a building block in
implementing previously proposed domain-specific prefetching/caching
techniques [Doshi et al.]". This bench runs real interactive sessions
with user *think time* between views and compares the plain tool
(foreground blocking reads only) against the predictive session that
speculates with ``add_unit`` hints: hit rates rise and blocking I/O
drops on pattern-following traces.
"""

import time

import pytest

from repro.bench.report import Table
from repro.viz.apollo import ApolloSession, interactive_trace

THINK_TIME_S = 0.08   # the user looks at the picture between requests


def run_session(data_dir, trace, predictive):
    with ApolloSession(
        data_dir, test="simple", mem_mb=128.0, render=False,
        predictive=predictive,
    ) as session:
        blocked = 0.0
        for step in trace:
            t0 = time.perf_counter()
            session.view(step)
            blocked += time.perf_counter() - t0
            time.sleep(THINK_TIME_S)
        return {
            "hits": session.stats.cache_hits,
            "views": session.stats.views,
            "bytes": session.stats.bytes_read,
            "blocked_wall_s": blocked,
        }


def test_predictive_interactive(benchmark, bench_dataset, results_dir):
    n = len(bench_dataset.snapshots)
    traces = {
        "playback": interactive_trace(n, 8, "scan"),
        "backforth": interactive_trace(n, 10, "backforth"),
    }

    def measure():
        rows = {}
        for name, trace in traces.items():
            rows[name] = {
                "plain": run_session(
                    bench_dataset.directory, trace, predictive=False
                ),
                "predictive": run_session(
                    bench_dataset.directory, trace, predictive=True
                ),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        title="A5 — interactive predictive prefetch (real sessions, "
              f"{THINK_TIME_S * 1000:.0f} ms think time)",
        headers=("trace", "mode", "hits/views", "foreground bytes",
                 "blocked wall (s)"),
    )
    for trace_name, modes in rows.items():
        for mode_name, stats in modes.items():
            table.add(
                trace_name, mode_name,
                f"{stats['hits']}/{stats['views']}",
                stats["bytes"], stats["blocked_wall_s"],
            )
    table.note(
        "prediction converts think time into prefetch time; wrong "
        "guesses are reclaimed by LRU eviction"
    )
    table.emit(results_dir)

    for trace_name, modes in rows.items():
        plain, predictive = modes["plain"], modes["predictive"]
        assert predictive["hits"] > plain["hits"], trace_name
        # Wall clocks are host-load sensitive; allow a small tolerance
        # while still requiring the prediction not to cost time.
        assert predictive["blocked_wall_s"] < \
            1.1 * plain["blocked_wall_s"], trace_name
