"""Shared fixtures for the benchmark suite.

Datasets are generated once per machine into ``benchmarks/.data`` and
reused across runs; result tables land in ``benchmarks/results``.
"""

import os

import pytest

from repro.bench.workloads import ensure_dataset

HERE = os.path.dirname(os.path.abspath(__file__))
DATA_ROOT = os.path.join(HERE, ".data")
RESULTS_DIR = os.path.join(HERE, "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def paper_scale_snapshot():
    """One full-paper-scale snapshot (120 blocks, ~680k tets, ~45 MB):
    enough to trace the real pipeline's I/O exactly."""
    return ensure_dataset(DATA_ROOT, scale=1.0, n_steps=1,
                          files_per_snapshot=8)


@pytest.fixture(scope="session")
def bench_dataset():
    """A mid-size multi-snapshot dataset for end-to-end runs."""
    return ensure_dataset(DATA_ROOT, scale=0.25, n_steps=8,
                          files_per_snapshot=4)
