"""Micro-benchmarks of the substrate hot paths.

Not a paper artifact — engineering guardrails for the pieces every
experiment exercises: the RB-tree index, the SDF reader, marching
tetrahedra, and the rasterizer.
"""

import numpy as np
import pytest

from repro.gen.tetmesh import structured_tet_block
from repro.io.sdf import SdfReader, SdfWriter
from repro.structures.rbtree import RedBlackTree
from repro.viz.camera import Camera
from repro.viz.colormap import Colormap
from repro.viz.isosurface import marching_tets
from repro.viz.render import Renderer


def test_bench_rbtree_insert(benchmark):
    keys = [(f"block_{i % 997:04d}$".encode(), f"{i}".encode())
            for i in range(1000)]

    def build():
        tree = RedBlackTree()
        for key in keys:
            tree.insert(key, key)
        return tree

    tree = benchmark(build)
    assert len(tree) == 1000


def test_bench_rbtree_lookup(benchmark):
    tree = RedBlackTree()
    for i in range(10_000):
        tree.insert(i, i)
    benchmark(lambda: tree.find(7777))


def test_bench_sdf_read(benchmark, tmp_path):
    path = str(tmp_path / "bench.sdf")
    data = np.random.default_rng(0).random(100_000)
    with SdfWriter(path) as writer:
        for i in range(10):
            writer.add_dataset(f"d{i}", data)

    def read_all():
        with SdfReader(path) as reader:
            return sum(
                reader.read(name)[0] for name in reader.dataset_names
            )

    benchmark(read_all)


def test_bench_marching_tets(benchmark):
    mesh = structured_tet_block(12, 12, 12)
    radius = np.linalg.norm(mesh.nodes - 0.5, axis=1)

    soup = benchmark(
        lambda: marching_tets(mesh.nodes, mesh.tets, radius, 0.35)
    )
    assert soup.n_triangles > 500


def test_bench_scalarize_magnitude(benchmark):
    """Vector-magnitude reduction (einsum path) over a large field."""
    from repro.viz.pipeline import scalarize

    values = np.random.default_rng(3).random((200_000, 3))
    scalars = benchmark(lambda: scalarize(values, "magnitude"))
    assert scalars.shape == (200_000,)


def test_bench_soup_concatenate(benchmark):
    """TriangleSoup.concatenate (preallocated merge) over many blocks."""
    from repro.viz.isosurface import TriangleSoup

    rng = np.random.default_rng(4)
    soups = [
        TriangleSoup(rng.random((2_000, 3, 3)), rng.random((2_000, 3)))
        for _ in range(16)
    ]
    merged = benchmark(lambda: TriangleSoup.concatenate(soups))
    assert merged.n_triangles == 32_000


def test_bench_boundary_faces(benchmark):
    """Boundary-skin extraction — the kernel the derived cache memoizes
    hardest (constant connectivity across the snapshot series)."""
    from repro.viz.geometry import boundary_faces

    mesh = structured_tet_block(12, 12, 12)
    faces = benchmark(lambda: boundary_faces(mesh.tets))
    assert len(faces) > 500


def test_bench_derived_cache_hit(benchmark):
    """DerivedCache lookup cost on the hit path (lock + policy touch)."""
    from repro.core.derived import DerivedCache
    from repro.core.memory_manager import MemoryManager

    memory = MemoryManager(64 << 20)
    cache = DerivedCache(memory)
    memory.bind(units=None, release_records=lambda name: 0,
                derived=cache)
    payload = np.random.default_rng(5).random(10_000)
    cache.put(("bench", "entry"), payload)
    value = benchmark(lambda: cache.get(("bench", "entry")))
    assert value is not None


def test_bench_rasterizer(benchmark):
    mesh = structured_tet_block(8, 8, 8)
    radius = np.linalg.norm(mesh.nodes - 0.5, axis=1)
    soup = marching_tets(mesh.nodes, mesh.tets, radius, 0.35)
    camera = Camera.fit_bounds((0, 0, 0), (1, 1, 1),
                               width=160, height=120)
    cmap = Colormap("heat", vmin=0.0, vmax=0.5)

    def render():
        renderer = Renderer(camera)
        renderer.draw(soup, cmap)
        return renderer.image()

    image = benchmark(render)
    assert image.shape == (120, 160, 3)


def test_bench_unit_lifecycle(benchmark):
    """add_unit -> wait_unit -> delete_unit cycle cost (single-thread
    build, trivial read callback): the library's per-unit overhead."""
    from repro.core.database import GBO
    from repro.core.schema import RecordSchema, SchemaField
    from repro.core.types import DataType

    schema = RecordSchema("tiny", (
        SchemaField("k", DataType.STRING, 8, is_key=True),
        SchemaField("v", DataType.DOUBLE, 64),
    ))
    counter = {"i": 0}

    def read_fn(gbo, name):
        schema.ensure(gbo)
        record = gbo.new_record("tiny")
        record.field("k").write(name[-8:].rjust(8).encode())
        gbo.commit_record(record)

    with GBO(mem_mb=64, background_io=False) as gbo:
        def cycle():
            counter["i"] += 1
            name = f"unit{counter['i']:08d}"
            gbo.add_unit(name, read_fn)
            gbo.wait_unit(name)
            gbo.delete_unit(name)

        benchmark(cycle)


def test_bench_marching_tets_scaling():
    """Marching tetrahedra scales roughly linearly in tet count."""
    import time

    times = {}
    for n in (6, 12):
        mesh = structured_tet_block(n, n, n)
        radius = np.linalg.norm(mesh.nodes - 0.5, axis=1)
        t0 = time.perf_counter()
        for _ in range(3):
            marching_tets(mesh.nodes, mesh.tets, radius, 0.35)
        times[n] = (time.perf_counter() - t0) / 3
    # 8x the tets should cost well under 32x the time (vectorized).
    assert times[12] < 32 * times[6]
