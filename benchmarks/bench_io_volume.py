"""N1 / N2 — I/O volume and I/O time reduction, real pipeline.

Runs the actual O and G Voyager builds over a paper-scale snapshot and
reports, per test, the read volume per snapshot (paper: 19.2 / 30.1 /
16.6 MB), the volume reduction GODIVA's buffer reuse achieves (paper:
~14 % / ~24 % / ~16 %), and the deterministic disk-model I/O time
reduction (paper: 17.6 % / 37.2 % / 20.1 %) — the extra time savings
coming from the eliminated back-and-forth seeks.
"""

import pytest

from repro.bench.report import Table
from repro.viz.voyager import Voyager, VoyagerConfig

PAPER = {
    "simple": {"mb": 19.2, "vol_red": 0.14, "time_red": 0.176},
    "medium": {"mb": 30.1, "vol_red": 0.24, "time_red": 0.372},
    "complex": {"mb": 16.6, "vol_red": 0.16, "time_red": 0.201},
}


def run_mode(dataset, test, mode):
    return Voyager(VoyagerConfig(
        data_dir=dataset.directory,
        test=test,
        mode=mode,
        mem_mb=4096.0,
        render=False,
    )).run()


def test_io_volume_reduction(benchmark, paper_scale_snapshot,
                             results_dir):
    def measure():
        rows = {}
        for test in PAPER:
            rows[test] = (
                run_mode(paper_scale_snapshot, test, "O"),
                run_mode(paper_scale_snapshot, test, "G"),
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        title="N1/N2 — I/O volume and time reduction (O vs G, real "
              "pipeline, per snapshot)",
        headers=("test", "G MB/snap", "paper MB", "vol red",
                 "paper vol", "io-time red", "paper time"),
    )
    for test, (o, g) in rows.items():
        vol_red = 1 - g.bytes_read / o.bytes_read
        time_red = 1 - g.virtual_io_s / o.virtual_io_s
        table.add(
            test,
            g.bytes_read / 1e6,
            PAPER[test]["mb"],
            f"{vol_red:.1%}",
            f"{PAPER[test]['vol_red']:.0%}",
            f"{time_red:.1%}",
            f"{PAPER[test]['time_red']:.1%}",
        )
        # Shape: reduction positive, within a loose band of the paper.
        assert 0.05 < vol_red < 0.45
        assert time_red > 0
        # Volume within 25 % of the paper's per-snapshot input size.
        assert abs(g.bytes_read / 1e6 - PAPER[test]["mb"]) \
            < 0.25 * PAPER[test]["mb"]
    table.emit(results_dir)

    # Ordering: medium largest volume AND largest reduction.
    vol = {t: rows[t][1].bytes_read for t in rows}
    red = {
        t: 1 - rows[t][1].bytes_read / rows[t][0].bytes_read
        for t in rows
    }
    assert vol["medium"] > vol["simple"] > vol["complex"]
    assert red["medium"] > red["complex"] > red["simple"]
