#!/usr/bin/env python
"""Parallel batch visualization: four Voyager processes.

Section 4.2 runs "a series of parallel experiments on Turing using four
Voyager processes": snapshots are partitioned across processors, each
with its own private GODIVA database, and "there is little communication
involved". This example reproduces that setup with ``multiprocessing``
and compares the four-worker makespan against a single worker.

Run:  python examples/parallel_render.py
"""

import tempfile

from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.parallel import run_parallel_voyager
from repro.viz.voyager import VoyagerConfig


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="godiva-parallel-")
    print("generating dataset (16 snapshots) ...")
    generate_dataset(
        SnapshotSpec(
            config=TitanConfig.scaled(0.25),
            n_steps=16,
            files_per_snapshot=4,
        ),
        data_dir,
    )

    config = VoyagerConfig(
        data_dir=data_dir,
        test="medium",
        mode="TG",
        mem_mb=128.0,
        render=True,
    )

    results = {}
    for n_workers in (1, 4):
        print(f"running with {n_workers} worker(s) ...")
        results[n_workers] = run_parallel_voyager(
            config, n_workers=n_workers
        )

    serial = results[1]
    parallel = results[4]
    print(
        f"\n1 worker : makespan {serial.makespan_s:7.2f} s, "
        f"{serial.total_bytes_read:,d} bytes\n"
        f"4 workers: makespan {parallel.makespan_s:7.2f} s, "
        f"{parallel.total_bytes_read:,d} bytes\n"
        f"speedup  : {serial.makespan_s / parallel.makespan_s:.2f}x "
        f"(I/O volume identical — workers read disjoint snapshots)"
    )
    for index, worker in enumerate(parallel.workers):
        print(
            f"  worker {index}: {worker.n_snapshots} snapshots, "
            f"{worker.total_wall_s:.2f} s wall, "
            f"visible I/O {worker.visible_io_wall_s:.3f} s"
        )


if __name__ == "__main__":
    main()
