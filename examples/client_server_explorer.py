#!/usr/bin/env python
"""Apollo/Houston: interactive exploration with parallel back-ends.

Rocketeer's client-server mode (section 4.1) splits the mesh blocks
across server processes; each server holds a private GODIVA database and
answers view requests from its cached (or freshly read) partition, and
the client merges the extracted geometry into one picture. Revisited
time steps hit every server's GODIVA cache simultaneously.

Run:  python examples/client_server_explorer.py
"""

import tempfile

from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.viz.houston import HoustonCluster, HoustonConfig
from repro.viz.image import write_ppm


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="godiva-houston-")
    print("generating dataset (12 blocks, 6 snapshots) ...")
    generate_dataset(
        SnapshotSpec(config=TitanConfig.scaled(0.25), n_steps=6,
                     files_per_snapshot=4),
        data_dir,
    )

    out_dir = tempfile.mkdtemp(prefix="godiva-houston-frames-")
    with HoustonCluster(HoustonConfig(
        data_dir=data_dir,
        test="complex",
        n_servers=3,
        mem_mb_per_server=64.0,
    )) as cluster:
        print(
            f"started {len(cluster.partitions)} Houston servers; "
            f"partitions: "
            f"{[len(p) for p in cluster.partitions]} blocks each"
        )
        # A user browsing: forward, then flipping back to compare.
        trace = [0, 1, 0, 1, 2, 3, 2, 4, 5, 4]
        for index, step in enumerate(trace):
            image = cluster.view(step)
            path = f"{out_dir}/view_{index:02d}_step{step}.ppm"
            write_ppm(path, image)
        print(
            f"served {cluster.views} views, read "
            f"{cluster.total_bytes_read:,d} bytes total "
            f"(revisits hit the per-server GODIVA caches)"
        )
        for index, stats in enumerate(cluster.server_stats()):
            print(
                f"  server {index}: "
                f"{stats['units_read_foreground']:.0f} reads, "
                f"{stats['wait_hits']:.0f} cache hits, "
                f"{stats['evictions']:.0f} evictions"
            )
    print(f"frames in {out_dir}/")


if __name__ == "__main__":
    main()
