#!/usr/bin/env python
"""Interactive exploration: the Apollo use case with GODIVA caching.

Models a user exploring time steps interactively — including the paper's
motivating pattern where "users may frequently switch back and forth
between snapshot images from two different time-steps to observe the
changes" (section 1). The session performs foreground blocking reads
(``read_unit``) and marks processed units *finished* rather than deleting
them, so revisits hit GODIVA's cache until memory pressure evicts in LRU
order (section 3.2).

Run:  python examples/interactive_explorer.py
"""

import tempfile

from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.viz.apollo import ApolloSession, interactive_trace


def explore(data_dir: str, mem_mb: float, pattern: str) -> None:
    with ApolloSession(
        data_dir, test="simple", mem_mb=mem_mb, render=False
    ) as session:
        trace = interactive_trace(
            n_snapshots=8, n_views=30, pattern=pattern
        )
        for step in trace:
            session.view(step)
        stats = session.stats
        evictions = session.gbo.stats.evictions
        print(
            f"  {pattern:9s} @ {mem_mb:5.2f} MB: "
            f"{stats.cache_hits}/{stats.views} hits "
            f"({stats.hit_rate:.0%}), {evictions} evictions, "
            f"{stats.bytes_read:,d} bytes read, "
            f"virtual I/O {stats.virtual_io_s:.2f} s"
        )


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="godiva-interactive-")
    print("generating dataset (8 snapshots) ...")
    generate_dataset(
        SnapshotSpec(
            config=TitanConfig.scaled(0.2),
            n_steps=8,
            files_per_snapshot=4,
        ),
        data_dir,
    )

    print("\nample memory — everything stays cached:")
    for pattern in ("backforth", "browse", "scan"):
        explore(data_dir, mem_mb=64.0, pattern=pattern)

    print("\ntight memory — LRU eviction earns its keep on revisits:")
    for pattern in ("backforth", "browse", "scan"):
        explore(data_dir, mem_mb=0.35, pattern=pattern)


if __name__ == "__main__":
    main()
