#!/usr/bin/env python
"""Fluid quick-look: the Table 1 dataset family, animated.

Generates the paper's fluid dataset (2-D structured mesh blocks with
element-based pressure/temperature, the exact Table 1 schema), registers
each time step as a GODIVA processing unit, prefetches them in order,
and renders a quick-look frame per step straight from the
database-managed buffers.

Run:  python examples/fluid_quicklook.py
"""

import tempfile

from repro import GBO
from repro.gen.snapshot import block_key, timestep_id
from repro.gen.structured_fluid import (
    generate_fluid_dataset,
    make_fluid_read_fn,
)
from repro.io.disk import ENGLE_DISK, IoStats
from repro.viz.fluid2d import render_from_gbo
from repro.viz.image import write_ppm


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="godiva-fluid-")
    out_dir = tempfile.mkdtemp(prefix="godiva-fluid-frames-")
    n_blocks, n_steps, dt = 4, 6, 25e-6

    print(f"writing {n_steps} fluid time steps x {n_blocks} blocks ...")
    paths = generate_fluid_dataset(
        data_dir, n_blocks=n_blocks, n_steps=n_steps, dt=dt
    )

    stats = IoStats()
    read_fn = make_fluid_read_fn(stats=stats, profile=ENGLE_DISK)
    with GBO(mem_mb=64) as godiva:
        for path in paths:           # batch mode: announce everything
            godiva.add_unit(path, read_fn)
        for step, path in enumerate(paths):
            godiva.wait_unit(path)
            t = (step + 1) * dt
            keys = [
                (block_key(f"block_{i:04d}").encode(),
                 timestep_id(t).encode())
                for i in range(1, n_blocks + 1)
            ]
            image = render_from_gbo(
                godiva, keys, field="pressure",
                width=480, height=160, colormap="coolwarm",
                vmin=6e4, vmax=1.3e5,
            )
            frame = f"{out_dir}/pressure_{step:04d}.ppm"
            write_ppm(frame, image)
            godiva.delete_unit(path)
        prefetched = godiva.stats.units_prefetched
    print(
        f"rendered {n_steps} frames to {out_dir}/\n"
        f"  units prefetched in background: {prefetched}\n"
        f"  bytes read: {stats.snapshot()['bytes_read']:,.0f}, "
        f"virtual I/O: {stats.snapshot()['virtual_seconds']:.2f} s"
    )


if __name__ == "__main__":
    main()
