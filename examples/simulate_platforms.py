#!/usr/bin/env python
"""Replay the paper's Figure 3 on the simulated Engle and Turing.

Traces the real visualization pipeline's I/O over a paper-scale snapshot
(120 blocks, ~680 k tets), then replays 32 snapshots on the two simulated
platforms to show where GODIVA's benefit comes from: redundant-read
elimination everywhere, plus near-total I/O hiding once a second CPU
frees the background I/O thread.

Run:  python examples/simulate_platforms.py [--quick]
"""

import sys
import tempfile

from repro.bench.figure3 import (
    PAPER_ENGLE,
    PAPER_TURING,
    derived_metrics_table,
    panel_table,
    run_figure3_panel,
    trace_all_workloads,
)
from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.simulate import ENGLE, TURING


def main() -> None:
    quick = "--quick" in sys.argv
    scale = 0.4 if quick else 1.0
    data_dir = tempfile.mkdtemp(prefix="godiva-fig3-")
    print(f"generating one scale-{scale:g} snapshot for I/O tracing ...")
    generate_dataset(
        SnapshotSpec(
            config=TitanConfig.scaled(scale),
            n_steps=1,
            files_per_snapshot=8,
        ),
        data_dir,
    )
    print("tracing the real pipeline (O and G builds) ...")
    workloads = trace_all_workloads(data_dir, n_snapshots=32)

    seeds = (0, 1) if quick else (0, 1, 2, 3, 4)
    for machine, paper in ((ENGLE, PAPER_ENGLE), (TURING, PAPER_TURING)):
        print(f"simulating {machine.name} "
              f"({machine.n_cpus} CPU{'s' if machine.n_cpus > 1 else ''}) ...")
        panel = run_figure3_panel(machine, workloads, seeds=seeds)
        print(panel_table(
            panel, f"Figure 3 — Voyager running time on {machine.name}"
        ).render())
        print(derived_metrics_table(
            panel, f"Derived metrics on {machine.name} (vs paper)",
            paper=paper,
        ).render())
        print()


if __name__ == "__main__":
    main()
