#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Reproduces section 3 of the paper in executable form:

1. define the Table-1 record type for 2-D structured fluid blocks;
2. create and commit a record instance (Figure 2) and query its buffers;
3. run the section-3.3 sample main program — two processing units added
   for prefetch, waited on, processed, and deleted.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import GBO, DataType, UNKNOWN
from repro.gen.structured_fluid import fluid_block_arrays
from repro.gen.snapshot import block_key, timestep_id
from repro.io.sdf import SdfReader, SdfWriter


def define_fluid_schema(godiva: GBO) -> None:
    """The exact schema-definition sequence from section 3.1."""
    godiva.define_field("block id", DataType.STRING, 11)
    godiva.define_field("time-step id", DataType.STRING, 9)
    godiva.define_field("x coordinates", DataType.DOUBLE, UNKNOWN)
    godiva.define_field("y coordinates", DataType.DOUBLE, UNKNOWN)
    godiva.define_field("pressure", DataType.DOUBLE, UNKNOWN)
    godiva.define_field("temperature", DataType.DOUBLE, UNKNOWN)

    godiva.define_record("fluid", num_keys=2)
    godiva.insert_field("fluid", "block id", is_key=True)
    godiva.insert_field("fluid", "time-step id", is_key=True)
    godiva.insert_field("fluid", "x coordinates", is_key=False)
    godiva.insert_field("fluid", "y coordinates", is_key=False)
    godiva.insert_field("fluid", "pressure", is_key=False)
    godiva.insert_field("fluid", "temperature", is_key=False)
    godiva.commit_record_type("fluid")


def write_fluid_file(path: str, block_indices, t: float) -> None:
    """Write one input file holding several fluid blocks (SDF format)."""
    with SdfWriter(path) as writer:
        writer.set_attribute("timestep", timestep_id(t))
        writer.set_attribute(
            "blocks", ",".join(str(i) for i in block_indices)
        )
        for index in block_indices:
            arrays = fluid_block_arrays(block_index=index, t=t)
            for name, data in arrays.items():
                writer.add_dataset(f"{name}:{index}", data,
                                   attrs={"block": index})


def read_fluid_file(godiva: GBO, unit_name: str) -> None:
    """The developer-supplied read function (section 3.2).

    The unit name is passed back so one function serves every unit; it
    creates records, allocates the UNKNOWN-size buffers once the sizes
    are known from the file, fills them, and commits.
    """
    path = unit_name  # this program simply names units by their path
    with SdfReader(path) as reader:
        attrs = reader.file_attributes()
        tsid = attrs["timestep"]
        for index in (int(i) for i in attrs["blocks"].split(",")):
            record = godiva.new_record("fluid")
            record.field("block id").write(
                block_key(f"block_{index:04d}").encode()
            )
            record.field("time-step id").write(tsid.encode())
            for field in ("x coordinates", "y coordinates",
                          "pressure", "temperature"):
                info = reader.info(f"{field}:{index}")
                buf = godiva.alloc_field_buffer(
                    record, field, info.data_nbytes
                )
                reader.read_into(f"{field}:{index}", buf.as_array())
            godiva.commit_record(record)


def process_unit(godiva: GBO, block_indices, t: float) -> None:
    """The data-processing side: query buffer locations and compute."""
    for index in block_indices:
        keys = [block_key(f"block_{index:04d}"), timestep_id(t)]
        pressure = godiva.get_field_buffer("fluid", "pressure", keys)
        size = godiva.get_field_buffer_size("fluid", "pressure", keys)
        print(
            f"  block_{index:04d}: pressure buffer {size} bytes, "
            f"mean {pressure.mean():.1f} Pa, max {pressure.max():.1f} Pa"
        )


def main() -> None:
    t = 25e-6
    workdir = tempfile.mkdtemp(prefix="godiva-quickstart-")
    file1 = os.path.join(workdir, "fluid_file1.sdf")
    file2 = os.path.join(workdir, "fluid_file2.sdf")
    write_fluid_file(file1, [1, 2], t)
    write_fluid_file(file2, [3, 4], t)

    # The sample main program of section 3.3: godiva = new GBO(400).
    # mem accepts "400MB" strings too; io_workers=1 is the paper's
    # single background I/O thread.
    godiva = GBO("400MB", io_workers=1)
    define_fluid_schema(godiva)

    # add_unit returns a UnitHandle; the background I/O workers prefetch
    # pending units highest-priority first, FIFO within ties.
    unit1 = godiva.add_unit(file1, read_fluid_file, priority=1.0)
    unit2 = godiva.add_unit(file2, read_fluid_file)

    # A UnitHandle is a context manager: the reference taken by wait()
    # is released (finish_unit) on exit, even if processing raises.
    print("processing fluid_file1:")
    with unit1.wait():
        process_unit(godiva, [1, 2], t)
    unit1.delete()

    print("processing fluid_file2:")
    with unit2.wait():
        process_unit(godiva, [3, 4], t)
    unit2.delete()

    stats = godiva.stats
    print(
        f"\nunits prefetched: {stats.units_prefetched}, "
        f"wait hits: {stats.wait_hits}, "
        f"bytes managed: {stats.bytes_allocated:,d}"
    )
    godiva.close()  # 'delete godiva' — terminates the I/O thread


if __name__ == "__main__":
    main()
