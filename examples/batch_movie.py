#!/usr/bin/env python
"""Batch movie rendering: the Voyager use case.

Generates a small synthetic rocket-propellant dataset (the GENx
substitute), then runs the multi-thread GODIVA Voyager build over every
time step, rendering one PPM frame per snapshot — "the visualization
program will go through these files and automatically generate a series
of images, often for animation" (section 1).

Run:  python examples/batch_movie.py [output-dir]
"""

import sys
import tempfile

from repro.gen.snapshot import SnapshotSpec, generate_dataset
from repro.gen.titan import TitanConfig
from repro.viz.voyager import Voyager, VoyagerConfig


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="godiva-movie-"
    )
    data_dir = tempfile.mkdtemp(prefix="godiva-data-")

    print("generating dataset (12 blocks, 8 snapshots) ...")
    spec = SnapshotSpec(
        config=TitanConfig.scaled(0.3),
        n_steps=8,
        files_per_snapshot=4,
    )
    generate_dataset(spec, data_dir)

    print("rendering with the multi-thread GODIVA Voyager (TG) ...")
    config = VoyagerConfig(
        data_dir=data_dir,
        test="complex",        # stacked stress isosurfaces + cut planes
        mode="TG",
        mem_mb=128.0,
        out_dir=out_dir,
        render=True,
    )
    result = Voyager(config).run()

    print(
        f"\nrendered {len(result.images)} frames "
        f"({result.triangles:,d} triangles total)\n"
        f"  total wall time  : {result.total_wall_s:.2f} s\n"
        f"  visible I/O time : {result.visible_io_wall_s:.3f} s "
        f"(prefetch hid the rest)\n"
        f"  bytes read       : {result.bytes_read:,d}\n"
        f"  units prefetched : {result.gbo_stats['units_prefetched']:.0f}"
    )
    print(f"\nframes written to {out_dir}/ (binary PPM, e.g. feh/GIMP)")
    for path in result.images[:3]:
        print(f"  {path}")
    if len(result.images) > 3:
        print(f"  ... and {len(result.images) - 3} more")


if __name__ == "__main__":
    main()
