"""Predicting a prefetch deadlock before blocking in it.

The paper's runtime detector (section 3.3) fires *inside* ``wait_unit``:
by the time the application learns about the wedge it is already
blocked. The concurrency sanitizer's ``predict_deadlock`` inspects the
same state — blocked I/O workers, what is evictable, what a prospective
wait would depend on — without blocking, so an application (or a
debugger) can flag the bug while it still has control.

The scenario: a budget that holds exactly two processing units, both
pinned by waits and never finished, while more units sit queued behind
a blocked worker. Waiting on a queued unit is doomed; the predictor
says so first, the runtime detector agrees, and following the advice
(``finish_unit`` on a processed unit) unwedges the pipeline.

Run with ``REPRO_ANALYSIS=1`` to additionally get tracked locks, the
lock-order graph, and "Lock held." contract checking for free.
"""

import time

from repro.analysis.invariants import io_blocked_report, predict_deadlock
from repro.core.database import GBO
from repro.core.schema import RecordSchema, SchemaField
from repro.core.types import DataType
from repro.errors import GodivaDeadlockError

ITEM = RecordSchema("item", (
    SchemaField("id", DataType.STRING, 16, is_key=True),
    SchemaField("data", DataType.DOUBLE),
))

UNIT_BYTES = 1000
UNIT_FOOTPRINT = 16 + UNIT_BYTES + 64   # key + data + record overhead


def read_item(gbo, unit_name):
    """Read callback: one record with a 1000-byte data buffer."""
    ITEM.ensure(gbo)
    record = gbo.new_record("item")
    record.field("id").write(unit_name.ljust(16)[:16].encode())
    gbo.alloc_field_buffer(record, "data", UNIT_BYTES)
    record.field("data").as_array()[:] = 3.0
    gbo.commit_record(record)


def main():
    budget = 2 * UNIT_FOOTPRINT
    with GBO(mem_bytes=budget, io_workers=1) as gbo:
        for i in range(4):
            gbo.add_unit(f"u{i}", read_item)
        # u0/u1 fill the budget; the waits pin them (paper rule: a
        # waited unit is only evictable after finish_unit).
        gbo.wait_unit("u0")
        gbo.wait_unit("u1")

        # Give the worker a moment to block loading u2.
        deadline = time.monotonic() + 5.0
        while not io_blocked_report(gbo) and time.monotonic() < deadline:
            time.sleep(0.005)
        for entry in io_blocked_report(gbo):
            print(f"worker blocked: needs {entry['needs_bytes']} bytes "
                  f"while loading {entry['loading_unit']!r}")

        print("predictor verdict for wait_unit('u3'), before blocking:")
        print(f"  {predict_deadlock(gbo, 'u3')}")

        try:
            gbo.wait_unit("u3")
        except GodivaDeadlockError:
            print("runtime detector agrees: GodivaDeadlockError raised")

        # Follow the report's advice: release a processed unit.
        gbo.finish_unit("u0")
        gbo.wait_unit("u2")
        print(f"after finish_unit('u0'): u2 is "
              f"{gbo.unit_state('u2').value}, pipeline unwedged")
        gbo.finish_unit("u1")
        gbo.finish_unit("u2")


if __name__ == "__main__":
    main()
